//! The retrieval → generation bridge (end-to-end co-scheduling).
//!
//! When a [`GenerationConfig`](crate::GenerationConfig) is set, the
//! dispatcher forwards every merged retrieval result to a dedicated
//! generation worker thread instead of replying directly. The worker
//! assembles the prompt (base tokens plus a per-retrieved-document token
//! cost), submits it to a [`LlmEngine`] and steps the engine against the
//! server's [`Clock`]: each iteration's virtual duration comes from the
//! LLM cost model, and the worker sleeps (real clock) or advances
//! (virtual clock) to the iteration boundary, so wall-clock runs overlap
//! generation with the next batch's retrieval exactly like the paper's
//! co-scheduled deployment — and virtual-time runs are deterministic to
//! the nanosecond.
//!
//! [`GenerationStage`] is the pure state machine inside the worker. It is
//! public so tests can script arrival sequences synchronously and pin
//! queue/prefill phase boundaries to exact ticks, the same pattern the
//! control loop uses for its trigger tests.

use std::collections::HashMap;

use crossbeam::channel::{Receiver, Sender, TryRecvError};

use vlite_llm::{EngineStats, LlmEngine, LlmEvent, LlmRequest};
use vlite_sim::{SimDuration, SimTime};

use crate::config::GenerationConfig;
use crate::control::Observation;
use crate::obs::Severity;
use crate::request::{GenerationTimings, RequestTimings, SearchResponse};
use crate::server::Shared;
use crate::trace::{
    GenSpans, RequestSpanTimes, TraceId, SIG_DEADLINE, SIG_SEARCH, SIG_TTFT, STAGE_GENERATION,
};

/// One request entering the generation stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenRequest {
    /// Request id, unique across the server's lifetime.
    pub id: u64,
    /// Retrieved documents merged into the prompt.
    pub n_docs: usize,
    /// When the request was admitted to the *server* (TTFT epoch).
    pub admitted_at: SimTime,
}

/// Queue/prefill phase durations of one first token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenPhases {
    /// Generation-stage arrival → prefill iteration start.
    pub queued: SimDuration,
    /// Prefill iteration start → first token.
    pub prefill: SimDuration,
}

/// Events emitted by one generation-stage step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenEvent {
    /// A request produced its first token. Emitted once per request: a
    /// preempted-and-recomputed sequence keeps its original first-token
    /// time (the user already saw that token).
    FirstToken {
        /// Request id.
        id: u64,
        /// First-token instant.
        at: SimTime,
        /// Phase breakdown of this first token.
        phases: GenPhases,
    },
    /// A request generated its last token.
    Completed {
        /// Request id.
        id: u64,
        /// Completion instant.
        at: SimTime,
    },
}

/// Outcome of one generation-stage step.
#[derive(Debug, Clone)]
pub struct GenStep {
    /// When the iteration finishes; the stage must not be advanced again
    /// before this instant.
    pub busy_until: SimTime,
    /// Events taking effect by `busy_until`.
    pub events: Vec<GenEvent>,
}

/// Book-keeping for one request inside the stage.
#[derive(Debug, Clone, Copy)]
struct Tracked {
    arrived_at: SimTime,
    first_token: Option<SimTime>,
}

/// The generation half of the co-scheduled pipeline as a pure state
/// machine: prompt assembly + continuous-batching engine + per-request
/// phase accounting, stepped explicitly in virtual time.
///
/// # Examples
///
/// ```
/// use vlite_serve::generation::{GenRequest, GenerationStage};
/// use vlite_serve::GenerationConfig;
/// use vlite_sim::SimTime;
///
/// let config = GenerationConfig::tiny();
/// let mut stage = GenerationStage::new(&config);
/// stage.submit(
///     GenRequest { id: 0, n_docs: 10, admitted_at: SimTime::ZERO },
///     SimTime::ZERO,
/// );
/// let step = stage.advance(SimTime::ZERO).expect("work pending");
/// assert!(step.busy_until > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct GenerationStage {
    config: GenerationConfig,
    engine: LlmEngine,
    tracked: HashMap<u64, Tracked>,
    free_at: SimTime,
}

impl GenerationStage {
    /// Builds the stage from its config.
    ///
    /// # Panics
    ///
    /// Panics if the config's token counts are degenerate (see
    /// [`GenerationConfig`]).
    pub fn new(config: &GenerationConfig) -> Self {
        let mut engine = LlmEngine::new(config.cost.clone(), config.kv_bytes);
        engine.set_max_batch(config.max_batch);
        engine.set_max_prefill_tokens(config.max_prefill_tokens);
        engine.set_interference(config.interference);
        Self {
            config: config.clone(),
            engine,
            tracked: HashMap::new(),
            free_at: SimTime::ZERO,
        }
    }

    /// The prompt length assembled for a request with `n_docs` retrieved
    /// documents (never zero: an empty retrieval still carries the base
    /// prompt, floored at one token).
    pub fn prompt_tokens(&self, n_docs: usize) -> u64 {
        self.config.prompt_tokens(n_docs).max(1)
    }

    /// Submits a merged retrieval for generation at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already in the stage, or the request could never
    /// fit in the KV pool (prevented upfront by
    /// [`GenerationConfig`] validation at server start).
    pub fn submit(&mut self, req: GenRequest, now: SimTime) {
        let tokens = self.prompt_tokens(req.n_docs);
        let prev = self.tracked.insert(
            req.id,
            Tracked {
                arrived_at: now,
                first_token: None,
            },
        );
        assert!(prev.is_none(), "request {} submitted twice", req.id);
        self.engine.submit(
            LlmRequest::new(req.id, tokens, self.config.output_tokens),
            now,
        );
    }

    /// Estimated earliest first-token instant for a request with
    /// `prompt_tokens` arriving at `now` — the KV-aware admission model.
    ///
    /// The estimate is deliberately simple and deterministic, built only
    /// from the engine's public state:
    ///
    /// 1. the engine is busy until `max(now, free_at)`;
    /// 2. if the KV pool cannot hold the already-waiting claims plus this
    ///    request (`prompt + output` tokens each), the running batch must
    ///    retire first — bounded by its longest remaining output at the
    ///    current decode-step rate;
    /// 3. every waiting prompt prefills ahead of this one (FCFS), then
    ///    this prompt prefills.
    ///
    /// It under-approximates heavy preemption churn, but a request it
    /// condemns has no plausible path to its first token in time.
    pub fn estimate_first_token(&self, prompt_tokens: u64, now: SimTime) -> SimTime {
        let start = if now > self.free_at {
            now
        } else {
            self.free_at
        };
        let kv = self.engine.kv();
        let needed = prompt_tokens + self.config.output_tokens;
        let queued_claim: u64 = self
            .engine
            .waiting()
            .map(|r| r.input_tokens + r.output_tokens)
            .sum();
        let mut at = start;
        if kv.resident_tokens() + queued_claim + needed > kv.capacity_tokens() {
            let batch = self.engine.running_len().max(1);
            let max_remaining = self
                .engine
                .running()
                .map(|(req, generated)| req.output_tokens.saturating_sub(generated))
                .max()
                .unwrap_or(0);
            let step = self.config.cost.decode_step_time(
                batch,
                kv.resident_tokens().max(1),
                self.config.interference,
            );
            at += SimDuration::from_secs_f64(step.as_secs_f64() * max_remaining as f64);
        }
        let queued_prompts: u64 = self.engine.waiting().map(|r| r.input_tokens).sum();
        at + self
            .config
            .cost
            .prefill_time(queued_prompts + prompt_tokens, self.config.interference)
    }

    /// KV-aware admission ([`GenerationConfig::kv_admission`]): submits the
    /// request unless its estimated TTFT already exceeds `slo_ttft`, in
    /// which case the request is shed (`Err` carries the condemning
    /// estimate) and the stage is left untouched.
    ///
    /// # Errors
    ///
    /// The estimated admission → first-token duration when it exceeds the
    /// TTFT SLO.
    pub fn submit_or_shed(
        &mut self,
        req: GenRequest,
        now: SimTime,
    ) -> std::result::Result<(), SimDuration> {
        let prompt = self.prompt_tokens(req.n_docs);
        let est_ttft = self.estimate_first_token(prompt, now) - req.admitted_at;
        if est_ttft.as_secs_f64() > self.config.slo_ttft {
            return Err(est_ttft);
        }
        self.submit(req, now);
        Ok(())
    }

    /// Runs one engine iteration. The iteration starts at `now` or at the
    /// end of the previous iteration, whichever is later (the engine is a
    /// single serial device). Returns `None` when the stage is idle.
    pub fn advance(&mut self, now: SimTime) -> Option<GenStep> {
        if self.engine.is_idle() {
            return None;
        }
        let start = if now > self.free_at {
            now
        } else {
            self.free_at
        };
        let step = self
            .engine
            .advance(start)
            .expect("engine has work but refused to step");
        self.free_at = step.busy_until;
        let mut events = Vec::with_capacity(step.events.len());
        for event in step.events {
            match event {
                LlmEvent::FirstToken { id, at } => {
                    let tracked = self
                        .tracked
                        .get_mut(&id)
                        .expect("first token for unknown request");
                    // A preempted sequence re-prefills, but its original
                    // first token already left the server: keep it.
                    if tracked.first_token.is_none() {
                        tracked.first_token = Some(at);
                        events.push(GenEvent::FirstToken {
                            id,
                            at,
                            phases: GenPhases {
                                queued: start - tracked.arrived_at,
                                prefill: at - start,
                            },
                        });
                    }
                }
                LlmEvent::Completed { id, at } => {
                    let tracked = self
                        .tracked
                        .remove(&id)
                        .expect("completion for unknown request");
                    assert!(
                        tracked.first_token.is_some(),
                        "request {id} completed without a first token"
                    );
                    events.push(GenEvent::Completed { id, at });
                }
            }
        }
        Some(GenStep {
            busy_until: step.busy_until,
            events,
        })
    }

    /// Whether the stage holds no work.
    pub fn is_idle(&self) -> bool {
        self.engine.is_idle()
    }

    /// Requests waiting for prefill admission.
    pub fn queue_len(&self) -> usize {
        self.engine.queue_len()
    }

    /// Sequences in the running batch.
    pub fn running_len(&self) -> usize {
        self.engine.running_len()
    }

    /// When the engine finishes its current iteration (equals the last
    /// step's `busy_until`).
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// The engine's aggregate counters.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.stats()
    }
}

/// One merged retrieval travelling from the dispatcher to the generation
/// worker.
pub(crate) struct GenWork {
    pub id: u64,
    pub tenant: crate::request::TenantId,
    pub neighbors: Vec<vlite_ann::Neighbor>,
    pub hit_rate: f64,
    pub generation: u64,
    pub enqueued: SimTime,
    /// Absolute end-to-end deadline, when the request carries a budget.
    pub deadline: Option<SimTime>,
    /// The request's trace id for causal span recording.
    pub trace: TraceId,
    /// The trace id of the batch span the request's search rode, when
    /// tracing is enabled.
    pub batch_trace: Option<u128>,
    /// Queue/search phases measured by the dispatcher, in seconds.
    pub queue: f64,
    pub search: f64,
    /// Merge instant (generation-stage arrival).
    pub merged_at: SimTime,
    pub reply: Sender<SearchResponse>,
    /// Global probe set, forwarded with the TTFT-keyed observation when
    /// the control loop is keyed off TTFT (`None` otherwise — the
    /// dispatcher already sent the search-keyed observation).
    pub probes: Option<Vec<u32>>,
}

impl GenWork {
    /// The request's whole budget in seconds, when it carries one.
    fn budget_secs(&self) -> Option<f64> {
        self.deadline
            .map(|d| (d - self.enqueued).as_secs_f64().max(1e-12))
    }
}

/// Why the generation stage refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShedCause {
    /// KV-aware admission: estimated TTFT past `slo_ttft`.
    Kv,
    /// Deadline enforcement: estimated first token past the request's own
    /// end-to-end deadline.
    Deadline,
}

/// In-flight per-request state the worker joins engine events against.
struct PendingGen {
    work: GenWork,
    first_token: Option<(SimTime, GenPhases)>,
}

/// The generation worker thread: drives a [`GenerationStage`] against the
/// server's clock, records TTFT metrics, streams TTFT-keyed observations
/// to the control loop, and delivers the final response at the last token.
pub(crate) fn generation_worker(
    shared: &Shared,
    config: &GenerationConfig,
    rx: &Receiver<GenWork>,
    control_tx: &Sender<Observation>,
) {
    shared.trace.register_worker(STAGE_GENERATION);
    let mut stage = GenerationStage::new(config);
    let mut pending: HashMap<u64, PendingGen> = HashMap::new();
    let mut closed = false;
    loop {
        // Admit work: block while idle, then absorb everything queued so
        // the next iteration batches all arrivals (continuous batching).
        if stage.is_idle() {
            if closed {
                break;
            }
            match rx.recv() {
                Ok(work) => admit(shared, config, &mut stage, &mut pending, control_tx, work),
                Err(_) => break,
            }
        }
        loop {
            match rx.try_recv() {
                Ok(work) => admit(shared, config, &mut stage, &mut pending, control_tx, work),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    closed = true;
                    break;
                }
            }
        }
        let now = shared.clock.now();
        let timer = shared.trace.stage_start(STAGE_GENERATION, now);
        if let Some(step) = stage.advance(now) {
            // The engine is busy until the iteration ends: wait it out on
            // the wall clock (or advance virtual time) before acting on
            // the events that take effect at that instant.
            shared.clock.sleep_until(step.busy_until);
            for event in step.events {
                match event {
                    GenEvent::FirstToken { id, at, phases } => {
                        let entry = pending.get_mut(&id).expect("unknown first token");
                        entry.first_token = Some((at, phases));
                        let ttft = (at - entry.work.enqueued).as_secs_f64();
                        if let Some(probes) = entry.work.probes.take() {
                            let _ = control_tx.send(Observation {
                                tenant: entry.work.tenant,
                                hit_rate: entry.work.hit_rate,
                                met_slo: ttft <= config.slo_ttft,
                                probes,
                            });
                        }
                    }
                    GenEvent::Completed { id, at } => {
                        let entry = pending.remove(&id).expect("unknown completion");
                        finish(shared, entry, at);
                    }
                }
            }
        }
        shared.trace.stage_end(timer, shared.clock.now());
    }
    assert!(
        pending.is_empty(),
        "generation worker exited with {} requests in flight",
        pending.len()
    );
}

fn admit(
    shared: &Shared,
    config: &GenerationConfig,
    stage: &mut GenerationStage,
    pending: &mut HashMap<u64, PendingGen>,
    control_tx: &Sender<Observation>,
    work: GenWork,
) {
    // The merge instant is the request's true arrival into this stage —
    // time spent in the channel while the worker slept out an iteration
    // is generation queueing and must count toward `gen_queue`, or the
    // ttft = queue + search + gen_queue + prefill identity breaks. The
    // next iteration starts at max(now, free_at) >= merged_at, so the
    // queued phase stays non-negative.
    let req = GenRequest {
        id: work.id,
        n_docs: work.neighbors.len(),
        admitted_at: work.enqueued,
    };
    // Rung 5 of the degradation ladder: when the estimated first token
    // lands past the request's own end-to-end deadline, generation is
    // pointless — deliver the retrieval results now instead of queueing
    // into a guaranteed deadline miss.
    if shared.deadline.enforce {
        if let Some(deadline) = work.deadline {
            let prompt = stage.prompt_tokens(work.neighbors.len());
            if stage.estimate_first_token(prompt, work.merged_at) > deadline {
                shed(shared, control_tx, work, ShedCause::Deadline);
                return;
            }
        }
    }
    if config.kv_admission {
        if stage.submit_or_shed(req, work.merged_at).is_err() {
            shed(shared, control_tx, work, ShedCause::Kv);
            return;
        }
    } else {
        stage.submit(req, work.merged_at);
    }
    pending.insert(
        work.id,
        PendingGen {
            work,
            first_token: None,
        },
    );
}

/// Generation admission rejected this request (KV-aware or
/// deadline-aware): serve its retrieval results immediately (no generation
/// phases) and account it as a TTFT miss — a shed — against its tenant.
///
/// The shed instant is the merge instant the dispatcher stamped, so the
/// response's timings are deterministic under a virtual clock regardless
/// of when this worker thread got scheduled.
fn shed(shared: &Shared, control_tx: &Sender<Observation>, mut work: GenWork, cause: ShedCause) {
    let timings = RequestTimings {
        queue: work.queue,
        search: work.search,
        e2e: work.queue + work.search,
        generation: None,
    };
    {
        let mut metrics = crate::sync::lock_recover(&shared.metrics);
        metrics.queue_lat.record(timings.queue);
        metrics.search_lat.record(timings.search);
        metrics.e2e_lat.record(timings.e2e);
        metrics.slo.observe(timings.search);
        // A shed never produces a first token: an infinite TTFT keeps the
        // attainment denominator honest without a latency sample.
        metrics.ttft_slo.observe(f64::INFINITY);
        metrics.gen_sheds += 1;
        if cause == ShedCause::Deadline {
            metrics.deadline_sheds[crate::obs::DEADLINE_STAGE_GENERATION] += 1;
        }
        if let Some(budget) = work.budget_secs() {
            metrics.burn_queue.record(timings.queue / budget);
            metrics.burn_search.record(timings.search / budget);
            // The retrieval-only reply leaves at the merge instant.
            if work.merged_at <= work.deadline.expect("budget implies deadline") {
                metrics.deadline_met += 1;
            } else {
                metrics.deadline_missed += 1;
            }
        }
        metrics.hit_sum += work.hit_rate;
        metrics.completed += 1;
        let tenant = &mut metrics.tenants[work.tenant.index()];
        tenant.queue_lat.record(timings.queue);
        tenant.search_lat.record(timings.search);
        tenant.e2e_lat.record(timings.e2e);
        tenant.slo.observe(timings.search);
        tenant.ttft_slo.observe(f64::INFINITY);
        tenant.gen_sheds += 1;
        tenant.hit_sum += work.hit_rate;
        tenant.completed += 1;
    }
    if cause == ShedCause::Deadline {
        shared
            .obs
            .on_deadline_shed(crate::obs::DEADLINE_STAGE_GENERATION);
    }
    if let Some(budget) = work.budget_secs() {
        shared
            .obs
            .on_budget_burn(crate::obs::BURN_STAGE_QUEUE, timings.queue / budget);
        shared
            .obs
            .on_budget_burn(crate::obs::BURN_STAGE_SEARCH, timings.search / budget);
    }
    shared.obs.on_request(
        work.id,
        work.tenant,
        work.enqueued.as_nanos(),
        &timings,
        timings.search <= shared.slo_search,
        Some(false),
        true,
    );
    let (kind, why) = match cause {
        ShedCause::Kv => ("shed", "KV-aware admission"),
        ShedCause::Deadline => ("deadline-shed", "deadline-aware generation admission"),
    };
    shared.obs.journal(
        work.merged_at.as_nanos(),
        Severity::Warn,
        kind,
        format!(
            "request {} ({}) shed by {why} after {:.4}s of retrieval",
            work.id, work.tenant, timings.e2e
        ),
    );
    let end_s = work.merged_at.as_nanos() as f64 / 1e9;
    shared.trace.record_request(
        work.trace,
        work.batch_trace,
        RequestSpanTimes {
            enqueued_s: work.enqueued.as_nanos() as f64 / 1e9,
            search_start_s: end_s - timings.search,
            search_end_s: end_s,
            end_s,
        },
        None,
        Some(match cause {
            ShedCause::Kv => "kv-admission",
            ShedCause::Deadline => "gen-deadline",
        }),
    );
    shared.watch_slo(
        SIG_SEARCH,
        timings.search <= shared.slo_search,
        work.merged_at,
    );
    shared.watch_slo(SIG_TTFT, false, work.merged_at);
    if let Some(deadline) = work.deadline {
        shared.watch_slo(SIG_DEADLINE, work.merged_at <= deadline, work.merged_at);
    }
    // TTFT-keyed control observations treat a shed as the SLO miss it is.
    if let Some(probes) = work.probes.take() {
        let _ = control_tx.send(Observation {
            tenant: work.tenant,
            hit_rate: work.hit_rate,
            met_slo: false,
            probes,
        });
    }
    let _ = work.reply.send(SearchResponse {
        id: work.id,
        tenant: work.tenant,
        neighbors: work.neighbors,
        timings,
        hit_rate: work.hit_rate,
        generation: work.generation,
        trace: work.trace,
    });
}

/// Deliver one finished request: record every per-request metric and send
/// the final response.
fn finish(shared: &Shared, entry: PendingGen, at: SimTime) {
    let PendingGen { work, first_token } = entry;
    let (first_at, phases) = first_token.expect("completed without first token");
    let ttft = (first_at - work.enqueued).as_secs_f64();
    let gen = GenerationTimings {
        gen_queue: phases.queued.as_secs_f64(),
        prefill: phases.prefill.as_secs_f64(),
        decode: (at - first_at).as_secs_f64(),
        ttft,
    };
    let timings = RequestTimings {
        queue: work.queue,
        search: work.search,
        e2e: (at - work.enqueued).as_secs_f64(),
        generation: Some(gen),
    };

    {
        let mut metrics = crate::sync::lock_recover(&shared.metrics);
        metrics.queue_lat.record(timings.queue);
        metrics.search_lat.record(timings.search);
        metrics.e2e_lat.record(timings.e2e);
        metrics.slo.observe(timings.search);
        metrics.ttft_lat.record(gen.ttft);
        metrics.ttft_slo.observe(gen.ttft);
        metrics.gen_queue_lat.record(gen.gen_queue);
        metrics.prefill_lat.record(gen.prefill);
        metrics.decode_lat.record(gen.decode);
        if let Some(budget) = work.budget_secs() {
            metrics.burn_queue.record(timings.queue / budget);
            metrics.burn_search.record(timings.search / budget);
            metrics
                .burn_gen
                .record((at - work.merged_at).as_secs_f64() / budget);
            if at <= work.deadline.expect("budget implies deadline") {
                metrics.deadline_met += 1;
            } else {
                metrics.deadline_missed += 1;
            }
        }
        metrics.hit_sum += work.hit_rate;
        metrics.completed += 1;
        let tenant = &mut metrics.tenants[work.tenant.index()];
        tenant.queue_lat.record(timings.queue);
        tenant.search_lat.record(timings.search);
        tenant.e2e_lat.record(timings.e2e);
        tenant.slo.observe(timings.search);
        tenant.ttft_lat.record(gen.ttft);
        tenant.ttft_slo.observe(gen.ttft);
        tenant.hit_sum += work.hit_rate;
        tenant.completed += 1;
    }

    if let Some(budget) = work.budget_secs() {
        shared
            .obs
            .on_budget_burn(crate::obs::BURN_STAGE_QUEUE, timings.queue / budget);
        shared
            .obs
            .on_budget_burn(crate::obs::BURN_STAGE_SEARCH, timings.search / budget);
        shared.obs.on_budget_burn(
            crate::obs::BURN_STAGE_GENERATION,
            (at - work.merged_at).as_secs_f64() / budget,
        );
    }

    let ttft_met = shared.generation.as_ref().map(|g| gen.ttft <= g.slo_ttft);
    shared.obs.on_request(
        work.id,
        work.tenant,
        work.enqueued.as_nanos(),
        &timings,
        timings.search <= shared.slo_search,
        ttft_met,
        false,
    );

    let search_end_s = (work.enqueued.as_nanos() as f64 / 1e9) + timings.queue + timings.search;
    shared.trace.record_request(
        work.trace,
        work.batch_trace,
        RequestSpanTimes {
            enqueued_s: work.enqueued.as_nanos() as f64 / 1e9,
            search_start_s: search_end_s - timings.search,
            search_end_s,
            end_s: at.as_nanos() as f64 / 1e9,
        },
        Some(GenSpans {
            queue_s: gen.gen_queue,
            prefill_s: gen.prefill,
            decode_s: gen.decode,
        }),
        None,
    );
    shared.watch_slo(SIG_SEARCH, timings.search <= shared.slo_search, at);
    shared.watch_slo(SIG_TTFT, ttft_met.unwrap_or(true), at);
    if let Some(deadline) = work.deadline {
        shared.watch_slo(SIG_DEADLINE, at <= deadline, at);
    }

    // The ticket may have been dropped (fire-and-forget submission).
    let _ = work.reply.send(SearchResponse {
        id: work.id,
        tenant: work.tenant,
        neighbors: work.neighbors,
        timings,
        hit_rate: work.hit_rate,
        generation: work.generation,
        trace: work.trace,
    });
}
