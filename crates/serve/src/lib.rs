//! `vlite-serve` — the real-time, wall-clock serving runtime of the
//! VectorLiteRAG reproduction (§IV-B over a real [`vlite_ann::IvfIndex`]).
//!
//! Where `vlite-core`'s [`RagPipeline`](vlite_core::RagPipeline) serves
//! requests in *virtual* time over cost models, this crate runs the paper's
//! coordination structure as a long-lived multi-threaded system:
//!
//! ```text
//!                 ┌────────────────────────────────────────────────┐
//!  submit_for() ─▶│ per-tenant bounded queues (reject the          │
//!                 │ over-quota tenant, never a victim)             │
//!                 └────────────┬───────────────────────────────────┘
//!                              ▼  weighted-fair drain (smooth WRR) +
//!                 ┌────────────────────────┐ on-demand batching
//!                 │ batcher: CQ + routing  │◀──── Router snapshot (RwLock)
//!                 └──┬─────────────┬───────┘
//!          pruned    ▼             ▼  cold probes
//!        ┌──────────────┐   ┌──────────────┐
//!        │ shard workers│   │ CPU scan pool│  (per-query completion
//!        │ ("GPUs")     │   │              │   callbacks)
//!        └──────┬───────┘   └──────┬───────┘
//!               │ scans read through a vlite-store StoreSnapshot:
//!               │ hot = resident f32 arenas, cold = mmap'd SQ8 extents,
//!               │ tiers moved live by the migrator thread on repartition
//!               ▼                  ▼
//!        ┌────────────────────────────────┐
//!        │ dispatcher: merge partials,    │──▶ per-request latencies,
//!        │ forward early finishers        │    SLO bookkeeping
//!        └──────┬───────┬─────────────────┘
//!               │       ▼ merged retrievals (co-scheduled servers)
//!               │  ┌────────────────────────────────┐
//!               │  │ generation worker: prompt      │──▶ TTFT + phase
//!               │  │ assembly → KV-aware admission  │    timings, sheds,
//!               │  │ → LlmEngine prefill/decode     │    final responses
//!               │  └───────────────┬────────────────┘
//!               ▼ observations     ▼ (hit rate, SLO: search- or TTFT-keyed)
//!        ┌────────────────────────────────┐
//!        │ control loop: per-tenant       │──▶ hot-swap new Router +
//!        │ DriftMonitors → re-profile →   │    order tier migration
//!        │ Algorithm 1 → re-split         │    (queue never drained)
//!        └────────────────────────────────┘
//! ```
//!
//! Every timestamp above is taken on a [`Clock`] — [`RealClock`] (wall
//! time) in production, [`VirtualClock`] (deterministic stepped time) in
//! tests — so the whole co-scheduled pipeline can be driven and asserted
//! to the exact tick without sleeping.
//!
//! - [`RagServer`] — owns the partitioned index and all runtime threads.
//! - [`ServeConfig`] / [`ControlConfig`] / [`TenantSpec`] — queueing,
//!   batching, online repartitioning, and per-tenant (weight, quota, SLO)
//!   knobs; [`TenantId`] names a tenant throughout the pipeline.
//! - [`GenerationConfig`] / [`generation`] — the retrieval → LLM bridge:
//!   retrieved-document token costs, the engine's KV/batch budgets, the
//!   TTFT SLO, and the [`GenerationStage`](generation::GenerationStage)
//!   state machine the worker thread drives.
//! - [`run_dispatcher`] / [`hybrid_search_batch`] — the one-shot batch
//!   dispatcher (moved here from `vlite-core`'s prototype in `real.rs`),
//!   reused by the persistent runtime.
//! - [`http`] — the hand-rolled HTTP/1.1 network frontend
//!   ([`HttpFrontend`]): `POST /v1/search` (with an `X-Tenant` header),
//!   `GET /v1/report`, `GET /v1/metrics` (Prometheus text exposition),
//!   `GET /v1/traces`, `GET /v1/events`, `GET /v1/tenants` and
//!   `GET /healthz` over `std::net::TcpListener`, thread-per-connection
//!   with keep-alive.
//! - [`obs`] — the always-on telemetry plane ([`ObsPlane`]): lock-free
//!   live counters and stage histograms, per-request trace timelines
//!   ([`RequestTrace`]), and the bounded unified event journal behind the
//!   three observability endpoints.
//! - [`loadgen`] — open-loop Poisson load generation with a rotating-hot-set
//!   query source for drift experiments, single- and multi-tenant, in
//!   process or over the HTTP frontend's socket.
//! - [`ServeReport`] — percentile latencies, SLO attainment, admission and
//!   repartition accounting for benches and figures, with a per-tenant
//!   breakdown ([`TenantReport`]).
//!
//! # Examples
//!
//! ```
//! use vlite_serve::{RagServer, ServeConfig};
//! use vlite_workload::{CorpusConfig, SyntheticCorpus};
//!
//! let corpus = SyntheticCorpus::generate(&CorpusConfig {
//!     n_vectors: 2_000,
//!     dim: 8,
//!     n_centers: 16,
//!     zipf_exponent: 1.0,
//!     noise: 0.2,
//!     seed: 7,
//! });
//! let server = RagServer::start(&corpus, ServeConfig::small()).expect("server starts");
//! let ticket = server.submit(corpus.vectors.get(0).to_vec()).expect("admitted");
//! let response = ticket.wait().expect("completes");
//! assert_eq!(response.neighbors[0].id, 0); // a vector is its own nearest neighbor
//! let report = server.shutdown();
//! assert_eq!(report.completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod config;
mod control;
mod dispatch;
pub mod generation;
pub mod http;
pub mod loadgen;
mod migrate;
pub mod obs;
mod queue;
mod report;
mod request;
mod server;
mod sync;
pub mod trace;

pub use clock::{Clock, RealClock, VirtualClock};
pub use config::{
    ControlConfig, DeadlinePolicy, GenerationConfig, HttpConfig, ServeConfig, SloSignal,
    StoreConfig, TenantSpec, TraceConfig,
};
pub use control::RepartitionEvent;
pub use dispatch::{hybrid_search_batch, run_dispatcher, DispatchOutcome};
pub use http::HttpFrontend;
pub use migrate::MigrationEvent;
pub use obs::{BoundedRing, ObsConfig, ObsEvent, ObsPlane, RequestTrace, Severity, TraceSpan};
pub use report::{ServeReport, StoreReport, TenantReport};
pub use request::{
    AdmissionError, GenerationTimings, RequestTimings, SearchResponse, TenantId, Ticket,
};
pub use server::RagServer;
pub use trace::{AlertLevel, AlertState, AlertTransition, StageProfile, TraceId, TracePlane};
