//! Serving-runtime configuration.

use vlite_core::{RealConfig, UpdateConfig};

/// Online-repartitioning (control-loop) knobs.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Drift-trigger thresholds fed to
    /// [`DriftMonitor`](vlite_core::DriftMonitor).
    pub update: UpdateConfig,
    /// How many recent probe sets the control loop keeps for re-profiling
    /// (the runtime analogue of the offline calibration-query budget).
    pub profile_window: usize,
    /// Minimum observed requests between two repartitions.
    pub cooldown_requests: usize,
    /// Whether a repartition requires the paper's dual condition (SLO
    /// attainment below threshold *and* hit-rate divergence). When `false`,
    /// hit-rate divergence alone triggers — useful on hardware where the
    /// latency side is pure noise (no actual GPUs behind the shard
    /// workers).
    pub require_slo_breach: bool,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            update: UpdateConfig::default(),
            profile_window: 2048,
            cooldown_requests: 512,
            require_slo_breach: true,
        }
    }
}

/// One tenant (SLO class) of the serving runtime.
///
/// Tenants are identified by their index in [`ServeConfig::tenants`]
/// ([`TenantId(i)`](crate::TenantId)). Each tenant owns a bounded admission
/// queue sized by `queue_capacity` — overload by one tenant fills *its*
/// queue and rejects *its* submissions, never a victim's — and the batcher
/// drains the per-tenant queues by smooth weighted round-robin on `weight`,
/// so a backlogged tenant gets at most `weight / Σ weights` of each dynamic
/// batch while other tenants have queued work.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Weighted-fair share of each batch relative to other tenants.
    pub weight: u32,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Search-stage SLO target in seconds for this tenant's attainment
    /// accounting (per-tenant rows of the report).
    pub slo_search: f64,
}

/// Network-frontend knobs
/// ([`HttpFrontend`](crate::http::HttpFrontend)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpConfig {
    /// Listen address, `host:port`. Port `0` lets the OS pick (read the
    /// bound address back from
    /// [`HttpFrontend::addr`](crate::http::HttpFrontend::addr)).
    pub addr: String,
    /// Largest request body accepted; bigger ones are rejected with
    /// `413 Payload Too Large`.
    pub max_body: usize,
    /// Whether connections persist across requests (HTTP/1.1 keep-alive).
    /// `false` forces `Connection: close` after every response.
    pub keep_alive: bool,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_body: 1 << 20,
            keep_alive: true,
        }
    }
}

/// Configuration of a [`RagServer`](crate::RagServer).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Offline-stage configuration (index, probes, SLO, shard count).
    pub real: RealConfig,
    /// Admission-queue capacity for the implicit single tenant when
    /// [`ServeConfig::tenants`] is empty; ignored otherwise.
    pub queue_capacity: usize,
    /// Largest batch one launch may absorb.
    pub max_batch: usize,
    /// Control-loop configuration.
    pub control: ControlConfig,
    /// The tenant table. Empty means one implicit tenant with
    /// [`ServeConfig::queue_capacity`] and the global search SLO — the
    /// single-tenant configuration older callers expect.
    pub tenants: Vec<TenantSpec>,
    /// Network-frontend configuration, used when the runtime is exposed
    /// through an [`HttpFrontend`](crate::http::HttpFrontend); inert for
    /// purely in-process servers.
    pub http: HttpConfig,
}

impl ServeConfig {
    /// Defaults suitable for the small synthetic corpora used in tests.
    pub fn small() -> Self {
        Self {
            real: RealConfig::small(),
            queue_capacity: 4096,
            max_batch: 64,
            control: ControlConfig::default(),
            tenants: Vec::new(),
            http: HttpConfig::default(),
        }
    }

    /// The tenant table actually served: the configured tenants, or the
    /// implicit single tenant when none are configured.
    ///
    /// # Panics
    ///
    /// Panics if any configured tenant has a zero weight or capacity —
    /// a zero-weight tenant would starve by construction and a zero-capacity
    /// queue rejects everything, both always config bugs.
    pub fn effective_tenants(&self) -> Vec<TenantSpec> {
        if self.tenants.is_empty() {
            return vec![TenantSpec {
                weight: 1,
                queue_capacity: self.queue_capacity,
                slo_search: self.real.slo_search,
            }];
        }
        for (i, spec) in self.tenants.iter().enumerate() {
            assert!(spec.weight > 0, "tenant {i} has zero weight");
            assert!(
                spec.queue_capacity > 0,
                "tenant {i} has zero queue capacity"
            );
            assert!(
                spec.slo_search.is_finite() && spec.slo_search > 0.0,
                "tenant {i} SLO must be positive and finite"
            );
        }
        self.tenants.clone()
    }
}
