//! Serving-runtime configuration.

use std::path::PathBuf;

use vlite_core::{RealConfig, UpdateConfig};
use vlite_llm::{LlmCostModel, ModelSpec};
use vlite_sim::devices;

/// Which latency the control loop's SLO observations are keyed off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SloSignal {
    /// Search-stage latency against `slo_search` (retrieval-only servers,
    /// and the default for co-scheduled ones).
    #[default]
    Search,
    /// End-to-end TTFT against [`GenerationConfig::slo_ttft`] — the metric
    /// users actually feel. Requires [`ServeConfig::generation`]; the SLO
    /// half of the drift trigger then reacts to queueing and prefill
    /// pressure in the generation stage, not just the search stage.
    Ttft,
}

/// Online-repartitioning (control-loop) knobs.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Drift-trigger thresholds fed to
    /// [`DriftMonitor`](vlite_core::DriftMonitor).
    pub update: UpdateConfig,
    /// How many recent probe sets the control loop keeps for re-profiling
    /// (the runtime analogue of the offline calibration-query budget).
    pub profile_window: usize,
    /// Minimum observed requests between two repartitions.
    pub cooldown_requests: usize,
    /// Whether a repartition requires the paper's dual condition (SLO
    /// attainment below threshold *and* hit-rate divergence). When `false`,
    /// hit-rate divergence alone triggers — useful on hardware where the
    /// latency side is pure noise (no actual GPUs behind the shard
    /// workers).
    pub require_slo_breach: bool,
    /// Which latency feeds the SLO half of the drift trigger.
    pub slo_signal: SloSignal,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            update: UpdateConfig::default(),
            profile_window: 2048,
            cooldown_requests: 512,
            require_slo_breach: true,
            slo_signal: SloSignal::Search,
        }
    }
}

/// Generation-stage (retrieval → LLM co-scheduling) knobs.
///
/// When [`ServeConfig::generation`] is set, every merged retrieval result
/// is assembled into a prompt (the retrieved documents priced in tokens)
/// and fed through a [`vlite_llm::LlmEngine`] running on its own worker
/// thread, so a request's lifecycle ends at its generated tokens and its
/// [`timings`](crate::RequestTimings::generation) carry
/// queue/prefill/decode phases and TTFT.
#[derive(Debug, Clone)]
pub struct GenerationConfig {
    /// Iteration latency model (model × device × tensor parallelism).
    pub cost: LlmCostModel,
    /// KV-cache pool bytes available to the engine — what remains of GPU
    /// memory after the vector-index shard takes its partition.
    pub kv_bytes: u64,
    /// Running-batch cap (vLLM `max_num_seqs`).
    pub max_batch: usize,
    /// Prompt tokens admitted into one prefill iteration (vLLM
    /// `max_num_batched_tokens`).
    pub max_prefill_tokens: u64,
    /// Prompt tokens independent of retrieval (instruction + query).
    pub prompt_tokens_base: u64,
    /// Prompt tokens each retrieved document adds.
    pub tokens_per_doc: u64,
    /// Tokens generated per request.
    pub output_tokens: u64,
    /// End-to-end TTFT SLO in seconds (admission → first token), the
    /// target of the report's TTFT attainment rows.
    pub slo_ttft: f64,
    /// Retrieval-interference multiplier on iteration times (`>= 1.0`; see
    /// [`LlmCostModel::interference`]).
    pub interference: f64,
    /// KV-aware admission: shed a request at generation enqueue when its
    /// prompt could not be KV-resident (and prefilled) within `slo_ttft`,
    /// instead of letting it queue into a guaranteed SLO miss. A shed
    /// request still receives its retrieval results (with
    /// `timings.generation == None`) and is counted as a TTFT miss in the
    /// submitting tenant's attainment. Off by default.
    pub kv_admission: bool,
}

impl GenerationConfig {
    /// A miniature model on one L40S — fast enough for tests and smoke
    /// runs while keeping realistic prefill/decode proportions.
    pub fn tiny() -> Self {
        Self {
            cost: LlmCostModel::new(ModelSpec::tiny(), devices::l40s(), 1),
            kv_bytes: 2 << 30,
            max_batch: 64,
            max_prefill_tokens: 8192,
            prompt_tokens_base: 64,
            tokens_per_doc: 32,
            output_tokens: 8,
            slo_ttft: 0.25,
            interference: 1.0,
            kv_admission: false,
        }
    }

    /// Prompt length for a request whose retrieval merged `n_docs`
    /// documents: the base prompt plus the per-document token cost.
    pub fn prompt_tokens(&self, n_docs: usize) -> u64 {
        self.prompt_tokens_base + self.tokens_per_doc * n_docs as u64
    }

    /// Panics unless the config is servable: positive token counts, a
    /// finite positive TTFT SLO, and a KV pool that fits the worst-case
    /// request (`top_k` retrieved docs plus the full output).
    pub(crate) fn validate(&self, top_k: usize) {
        assert!(self.output_tokens > 0, "output_tokens must be positive");
        assert!(
            self.slo_ttft.is_finite() && self.slo_ttft > 0.0,
            "slo_ttft must be positive and finite"
        );
        assert!(self.interference >= 1.0, "interference must be >= 1.0");
        let worst = self.prompt_tokens(top_k).max(1) + self.output_tokens;
        // Size the check with the engine's own allocator so this start-time
        // assert can never drift from the submit-time one inside the worker.
        let capacity = vlite_llm::PagedKvCache::with_bytes(
            self.kv_bytes,
            self.cost.model().kv_bytes_per_token(),
        )
        .capacity_tokens();
        assert!(
            worst <= capacity,
            "a worst-case request needs {worst} KV tokens but the pool holds only {capacity}"
        );
    }
}

/// Deadline-budget (latency-enforcement) knobs.
///
/// `slo_search`/`slo_ttft` are *measured* targets; a [`DeadlinePolicy`]
/// makes latency an *enforced* input. Every admitted request carries an
/// absolute end-to-end deadline (the client's `X-Deadline-Ms`, or
/// [`default_deadline`](DeadlinePolicy::default_deadline)) and, when
/// [`enforce`](DeadlinePolicy::enforce) is on, each stage adapts to the
/// remaining budget — the degradation ladder, in order:
///
/// 1. **Admission shed**: when the estimated queue wait (lane depth over
///    the recent drain rate) already exceeds the whole budget, reject at
///    submit with [`AdmissionError::DeadlineUnmeetable`](crate::AdmissionError).
/// 2. **Queue-expiry shed**: a request whose deadline passed while queued
///    is dropped at batch formation instead of wasting a batch slot.
/// 3. **Probe shrinking**: a request that burned queue budget probes a
///    prefix of its closeness-ordered probe list, scaled to the remaining
///    budget (never below
///    [`min_probe_fraction`](DeadlinePolicy::min_probe_fraction)).
/// 4. **Cold-tier skip**: when the remaining budget cannot absorb a
///    cold-tier (CPU) scan, the query keeps only its fast-tier probes.
/// 5. **Generation shed**: a request whose estimated first token lands
///    past the deadline is shed at generation admission (the retrieval
///    results are still delivered).
///
/// Every rung is counted (`deadline_sheds`, `degraded_probes`,
/// `cold_skips`) and per-stage budget burn is reported, so degradation is
/// observable, never silent. With `enforce == false` the budget is still
/// threaded and *measured* (burn + goodput accounting) but never acted on
/// — the measure-only baseline `serve_smoke --deadlines` compares against.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlinePolicy {
    /// Default end-to-end deadline in seconds stamped on requests that do
    /// not carry their own. `None` leaves such requests unbudgeted (they
    /// are never shed or degraded).
    pub default_deadline: Option<f64>,
    /// Whether stages act on the budget. `false` = measure-only: budget
    /// burn and deadline attainment are reported but nothing is shed or
    /// degraded.
    pub enforce: bool,
    /// Estimated full-probe search-stage cost in seconds (a measured p50
    /// is a good value). Drives probe shrinking: a request whose remaining
    /// budget is below this probes proportionally fewer lists.
    pub est_search: f64,
    /// Estimated extra seconds a cold-tier (CPU/SQ8) scan adds on top of
    /// the fast tier. When the remaining budget is below
    /// `est_search + est_cold`, the query skips its cold-tier probes.
    pub est_cold: f64,
    /// Floor on the fraction of the configured probe list a degraded
    /// query keeps (always at least one probe).
    pub min_probe_fraction: f64,
    /// Upper bound in seconds the HTTP handler waits on an *unbudgeted*
    /// request before answering `504 Gateway Timeout` — the backstop that
    /// keeps a wedged pipeline from pinning connection threads forever.
    /// Budgeted requests wait until their own deadline instead.
    pub max_http_wait: f64,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        Self {
            default_deadline: None,
            enforce: false,
            est_search: 0.005,
            est_cold: 0.050,
            min_probe_fraction: 0.25,
            max_http_wait: 30.0,
        }
    }
}

impl DeadlinePolicy {
    /// Panics unless the policy is servable: positive finite estimates, a
    /// probe floor in `(0, 1]`, and a positive default deadline when set.
    pub(crate) fn validate(&self) {
        if let Some(d) = self.default_deadline {
            assert!(
                d.is_finite() && d > 0.0,
                "default_deadline must be positive and finite"
            );
        }
        assert!(
            self.est_search.is_finite() && self.est_search > 0.0,
            "est_search must be positive and finite"
        );
        assert!(
            self.est_cold.is_finite() && self.est_cold >= 0.0,
            "est_cold must be non-negative and finite"
        );
        assert!(
            self.min_probe_fraction > 0.0 && self.min_probe_fraction <= 1.0,
            "min_probe_fraction must be in (0, 1]"
        );
        assert!(
            self.max_http_wait.is_finite() && self.max_http_wait > 0.0,
            "max_http_wait must be positive and finite"
        );
    }
}

/// Tiered-storage (vlite-store) knobs.
///
/// When enabled (the default) and the index uses flat list storage, the
/// runtime detaches the index's list payloads into a
/// [`TieredStore`](vlite_store::TieredStore): clusters the placement marks
/// hot become resident full-precision arenas, cold clusters live in the
/// segment file's mmap'd SQ8 extents, and a background migrator moves
/// cluster extents between tiers on every online repartition without
/// stalling the dispatcher.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreConfig {
    /// Directory holding the segment file (`vlite-store.seg`). `None`
    /// uses a per-server temporary directory whose segment is removed at
    /// shutdown; set a real path to persist the segment across restarts —
    /// an existing file is reopened and verified instead of rewritten
    /// (save → load → serve).
    pub dir: Option<PathBuf>,
    /// Disables tiered storage entirely: the index keeps its in-memory
    /// lists and placement stays routing-only (the pre-store behaviour,
    /// and the only option for PQ/fast-scan list storage, which the
    /// runtime falls back to automatically).
    pub disabled: bool,
    /// Disables blocked (cluster-major) batch scans, reverting the shard
    /// and CPU workers to query-at-a-time scanning. Results are
    /// identical either way; the flag exists for A/B measurement
    /// (`serve_smoke` sweeps it) and as an escape hatch.
    pub unblocked: bool,
}

impl StoreConfig {
    /// The segment file this config points at, given a freshly created
    /// temp dir when [`StoreConfig::dir`] is `None`.
    pub(crate) fn segment_path(&self) -> (PathBuf, bool) {
        match &self.dir {
            Some(dir) => (dir.join("vlite-store.seg"), false),
            None => {
                static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                // relaxed: unique-suffix counter; atomicity is all that
                // distinct temp dirs need.
                let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let dir =
                    std::env::temp_dir().join(format!("vlite-store-{}-{n}", std::process::id()));
                (dir.join("vlite-store.seg"), true)
            }
        }
    }
}

/// Causal-tracing, profiling and alerting knobs
/// ([`TracePlane`](crate::trace::TracePlane)).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Master switch. When `false` no spans are recorded, no profiler
    /// thread is spawned and the watchdog never fires; the trace/profile/
    /// alerts endpoints answer with empty bodies.
    pub enabled: bool,
    /// Distinct traces retained before whole oldest traces are evicted.
    pub trace_capacity: usize,
    /// Sampling-profiler period in seconds (real clocks only; virtual-
    /// clock runs sample explicitly via
    /// [`TracePlane::sample_now`](crate::trace::TracePlane::sample_now)).
    pub sample_interval_s: f64,
    /// Attainment target the burn-rate watchdog holds every SLO signal
    /// (search / TTFT / deadline) to, e.g. `0.95` = 5% error budget.
    pub slo_target: f64,
    /// Fast burn-rate window in seconds (catches sharp regressions).
    pub fast_window_s: f64,
    /// Slow burn-rate window in seconds (confirms sustained burn).
    pub slow_window_s: f64,
    /// Burn rate (budget consumption multiple) at which a signal enters
    /// `warn` — both windows must exceed it.
    pub warn_burn: f64,
    /// Burn rate at which a signal enters `critical`.
    pub critical_burn: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            trace_capacity: 512,
            sample_interval_s: 0.050,
            slo_target: 0.95,
            fast_window_s: 60.0,
            slow_window_s: 600.0,
            warn_burn: 2.0,
            critical_burn: 10.0,
        }
    }
}

impl TraceConfig {
    /// Panics unless the config is servable: positive finite windows and
    /// interval, a target in `(0, 1)`, and ordered burn thresholds.
    pub(crate) fn validate(&self) {
        assert!(
            self.sample_interval_s.is_finite() && self.sample_interval_s > 0.0,
            "sample_interval_s must be positive and finite"
        );
        assert!(
            self.slo_target > 0.0 && self.slo_target < 1.0,
            "slo_target must be in (0, 1)"
        );
        assert!(
            self.fast_window_s.is_finite() && self.fast_window_s > 0.0,
            "fast_window_s must be positive and finite"
        );
        assert!(
            self.slow_window_s >= self.fast_window_s,
            "slow_window_s must be >= fast_window_s"
        );
        assert!(
            self.warn_burn.is_finite() && self.warn_burn > 0.0,
            "warn_burn must be positive and finite"
        );
        assert!(
            self.critical_burn >= self.warn_burn,
            "critical_burn must be >= warn_burn"
        );
    }
}

/// One tenant (SLO class) of the serving runtime.
///
/// Tenants are identified by their index in [`ServeConfig::tenants`]
/// ([`TenantId(i)`](crate::TenantId)). Each tenant owns a bounded admission
/// queue sized by `queue_capacity` — overload by one tenant fills *its*
/// queue and rejects *its* submissions, never a victim's — and the batcher
/// drains the per-tenant queues by smooth weighted round-robin on `weight`,
/// so a backlogged tenant gets at most `weight / Σ weights` of each dynamic
/// batch while other tenants have queued work.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Weighted-fair share of each batch relative to other tenants.
    pub weight: u32,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Search-stage SLO target in seconds for this tenant's attainment
    /// accounting (per-tenant rows of the report).
    pub slo_search: f64,
}

/// Network-frontend knobs
/// ([`HttpFrontend`](crate::http::HttpFrontend)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpConfig {
    /// Listen address, `host:port`. Port `0` lets the OS pick (read the
    /// bound address back from
    /// [`HttpFrontend::addr`](crate::http::HttpFrontend::addr)).
    pub addr: String,
    /// Largest request body accepted; bigger ones are rejected with
    /// `413 Payload Too Large`.
    pub max_body: usize,
    /// Whether connections persist across requests (HTTP/1.1 keep-alive).
    /// `false` forces `Connection: close` after every response.
    pub keep_alive: bool,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_body: 1 << 20,
            keep_alive: true,
        }
    }
}

/// Configuration of a [`RagServer`](crate::RagServer).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Offline-stage configuration (index, probes, SLO, shard count).
    pub real: RealConfig,
    /// Admission-queue capacity for the implicit single tenant when
    /// [`ServeConfig::tenants`] is empty; ignored otherwise.
    pub queue_capacity: usize,
    /// Largest batch one launch may absorb.
    pub max_batch: usize,
    /// Control-loop configuration.
    pub control: ControlConfig,
    /// The tenant table. Empty means one implicit tenant with
    /// [`ServeConfig::queue_capacity`] and the global search SLO — the
    /// single-tenant configuration older callers expect.
    pub tenants: Vec<TenantSpec>,
    /// Network-frontend configuration, used when the runtime is exposed
    /// through an [`HttpFrontend`](crate::http::HttpFrontend); inert for
    /// purely in-process servers.
    pub http: HttpConfig,
    /// Generation-stage configuration. `None` serves retrieval only (the
    /// pre-co-scheduling behaviour); `Some` bridges every merged retrieval
    /// into the LLM engine and reports TTFT end to end.
    pub generation: Option<GenerationConfig>,
    /// Tiered-storage configuration: where the segment file lives and
    /// whether physical tiering is enabled at all.
    pub store: StoreConfig,
    /// Deadline-budget policy: default per-request budget, whether stages
    /// enforce it (shed/degrade) or only measure burn, and the cost
    /// estimates the degradation ladder scales against.
    pub deadline: DeadlinePolicy,
    /// Telemetry-plane configuration (on by default): live lock-free
    /// metrics, trace rings, and the unified event journal behind
    /// `GET /v1/metrics`, `/v1/traces` and `/v1/events`.
    pub obs: crate::obs::ObsConfig,
    /// Causal-tracing configuration (on by default): span trees behind
    /// `GET /v1/trace/{id}`, the per-stage sampling profiler behind
    /// `GET /v1/profile`, and the SLO burn-rate watchdog behind
    /// `GET /v1/alerts`.
    pub trace: TraceConfig,
}

impl ServeConfig {
    /// Defaults suitable for the small synthetic corpora used in tests.
    pub fn small() -> Self {
        Self {
            real: RealConfig::small(),
            queue_capacity: 4096,
            max_batch: 64,
            control: ControlConfig::default(),
            tenants: Vec::new(),
            http: HttpConfig::default(),
            generation: None,
            store: StoreConfig::default(),
            deadline: DeadlinePolicy::default(),
            obs: crate::obs::ObsConfig::default(),
            trace: TraceConfig::default(),
        }
    }

    /// The tenant table actually served: the configured tenants, or the
    /// implicit single tenant when none are configured.
    ///
    /// # Panics
    ///
    /// Panics if any configured tenant has a zero weight or capacity —
    /// a zero-weight tenant would starve by construction and a zero-capacity
    /// queue rejects everything, both always config bugs.
    pub fn effective_tenants(&self) -> Vec<TenantSpec> {
        if self.tenants.is_empty() {
            return vec![TenantSpec {
                weight: 1,
                queue_capacity: self.queue_capacity,
                slo_search: self.real.slo_search,
            }];
        }
        for (i, spec) in self.tenants.iter().enumerate() {
            assert!(spec.weight > 0, "tenant {i} has zero weight");
            assert!(
                spec.queue_capacity > 0,
                "tenant {i} has zero queue capacity"
            );
            assert!(
                spec.slo_search.is_finite() && spec.slo_search > 0.0,
                "tenant {i} SLO must be positive and finite"
            );
        }
        self.tenants.clone()
    }
}
