//! Serving-runtime configuration.

use vlite_core::{RealConfig, UpdateConfig};

/// Online-repartitioning (control-loop) knobs.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Drift-trigger thresholds fed to
    /// [`DriftMonitor`](vlite_core::DriftMonitor).
    pub update: UpdateConfig,
    /// How many recent probe sets the control loop keeps for re-profiling
    /// (the runtime analogue of the offline calibration-query budget).
    pub profile_window: usize,
    /// Minimum observed requests between two repartitions.
    pub cooldown_requests: usize,
    /// Whether a repartition requires the paper's dual condition (SLO
    /// attainment below threshold *and* hit-rate divergence). When `false`,
    /// hit-rate divergence alone triggers — useful on hardware where the
    /// latency side is pure noise (no actual GPUs behind the shard
    /// workers).
    pub require_slo_breach: bool,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            update: UpdateConfig::default(),
            profile_window: 2048,
            cooldown_requests: 512,
            require_slo_breach: true,
        }
    }
}

/// Configuration of a [`RagServer`](crate::RagServer).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Offline-stage configuration (index, probes, SLO, shard count).
    pub real: RealConfig,
    /// Admission-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Largest batch one launch may absorb.
    pub max_batch: usize,
    /// Control-loop configuration.
    pub control: ControlConfig,
}

impl ServeConfig {
    /// Defaults suitable for the small synthetic corpora used in tests.
    pub fn small() -> Self {
        Self {
            real: RealConfig::small(),
            queue_capacity: 4096,
            max_batch: 64,
            control: ControlConfig::default(),
        }
    }
}
