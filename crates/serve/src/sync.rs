//! Poisoned-lock recovery: the serving runtime's lock-acquisition idiom.
//!
//! `Mutex`/`RwLock` poisoning turns one panicking worker into a cascade:
//! every thread that later touches the same lock — including the
//! admission path and the HTTP frontend — panics too, and the runtime
//! falls over instead of degrading. Every structure the runtime guards
//! (admission lanes, dispatcher metrics, trace rings, the placement
//! snapshot, connection tables) is kept consistent *within* each critical
//! section by construction: updates are small, straight-line, and never
//! leave a partially-linked state behind, so the data a panicking holder
//! abandons is still well-formed — at worst a counter misses one bump.
//! Recovering the guard and continuing is therefore strictly better than
//! propagating the panic.
//!
//! These helpers are the only sanctioned way to acquire a lock in this
//! crate; the `lock-hygiene` rule in `vlite-lint` rejects
//! `.lock().unwrap()` / `.expect(…)` poisoning panics anywhere outside
//! tests.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquires `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Read-locks `rwlock`, recovering the guard from poisoning.
pub(crate) fn read_recover<T>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rwlock
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-locks `rwlock`, recovering the guard from poisoning.
pub(crate) fn write_recover<T>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rwlock
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Waits on `condvar`, recovering the reacquired guard from poisoning.
pub(crate) fn wait_recover<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn poison(mutex: &Arc<Mutex<u32>>) {
        let m = mutex.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
    }

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        let mutex = Arc::new(Mutex::new(7u32));
        poison(&mutex);
        assert!(mutex.is_poisoned());
        *lock_recover(&mutex) += 1;
        assert_eq!(*lock_recover(&mutex), 8);
    }

    #[test]
    fn rwlock_recovery_survives_a_poisoning_panic() {
        let rwlock = Arc::new(RwLock::new(1u32));
        let r = rwlock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = r.write().unwrap();
            panic!("poison the rwlock");
        })
        .join();
        *write_recover(&rwlock) = 2;
        assert_eq!(*read_recover(&rwlock), 2);
    }

    #[test]
    fn wait_recover_wakes_despite_poisoning() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        poison(&Arc::new(Mutex::new(0u32))); // unrelated; sanity
        let p = pair.clone();
        let waker = std::thread::spawn(move || {
            *lock_recover(&p.0) = true;
            p.1.notify_all();
        });
        let (mutex, condvar) = (&pair.0, &pair.1);
        let mut ready = lock_recover(mutex);
        while !*ready {
            ready = wait_recover(condvar, ready);
        }
        waker.join().expect("waker joins");
    }
}
