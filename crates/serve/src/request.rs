//! Request/response types crossing the serving runtime's thread boundaries.

use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use vlite_ann::Neighbor;

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded admission queue is at capacity (open-loop overload).
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            AdmissionError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Wall-clock timeline of one served request, all in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTimings {
    /// Admission → batch launch (queueing delay).
    pub queue: f64,
    /// Batch launch → merged top-k available (search execution).
    pub search: f64,
    /// Admission → merged top-k available.
    pub e2e: f64,
}

/// The merged retrieval result for one request.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// Request id (assigned at admission).
    pub id: u64,
    /// Final merged top-k neighbors.
    pub neighbors: Vec<Neighbor>,
    /// Per-stage wall-clock timings.
    pub timings: RequestTimings,
    /// The request's cache hit rate (GPU probes / total probes) under the
    /// placement that served it.
    pub hit_rate: f64,
    /// Placement generation that served the request (increments on every
    /// online repartition).
    pub generation: u64,
}

/// A handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) rx: Receiver<SearchResponse>,
}

impl Ticket {
    /// The admitted request's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request completes. Returns `None` only if the
    /// server was torn down before serving it.
    pub fn wait(self) -> Option<SearchResponse> {
        self.rx.recv().ok()
    }

    /// Blocks up to `timeout`; `Ok(None)` means the server went away,
    /// `Err(self)` that the request is still in flight.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Option<SearchResponse>, Ticket> {
        match self.rx.recv_timeout(timeout) {
            Ok(response) => Ok(Some(response)),
            Err(RecvTimeoutError::Disconnected) => Ok(None),
            Err(RecvTimeoutError::Timeout) => Err(self),
        }
    }
}

/// An admitted request travelling through the runtime (internal).
#[derive(Debug)]
pub(crate) struct Job {
    pub id: u64,
    pub query: Vec<f32>,
    pub enqueued: Instant,
    pub reply: Sender<SearchResponse>,
}
