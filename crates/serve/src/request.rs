//! Request/response types crossing the serving runtime's thread boundaries.

use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use vlite_ann::Neighbor;
use vlite_sim::SimTime;

use crate::trace::TraceId;

/// Identifies one tenant (SLO class) of the serving runtime.
///
/// The id is an index into [`ServeConfig::tenants`](crate::ServeConfig):
/// tenant 0 always exists (single-tenant configs get one implicit tenant),
/// so [`RagServer::submit`](crate::RagServer::submit) without a tenant is
/// shorthand for submitting as tenant 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u16);

impl TenantId {
    /// The tenant's index into the configured tenant table.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// The submitting tenant's bounded queue is at capacity (open-loop
    /// overload). Rejection charges the over-quota tenant only: no other
    /// tenant's queued work is evicted.
    QueueFull {
        /// The tenant whose quota was exhausted.
        tenant: TenantId,
        /// That tenant's configured queue capacity.
        capacity: usize,
    },
    /// The tenant id is not in the configured tenant table.
    UnknownTenant {
        /// The offending id.
        tenant: TenantId,
        /// Number of configured tenants (valid ids are `0..n_tenants`).
        n_tenants: usize,
    },
    /// The query vector is malformed: wrong dimensionality for the served
    /// index, or a non-finite (NaN/Inf) component. Rejected at admission —
    /// downstream the SIMD kernels assert on slice lengths and NaN poisons
    /// the top-k total order, so such a query must never reach a scan.
    InvalidQuery {
        /// Dimensionality of the served index.
        expected_dim: usize,
        /// Dimensionality of the submitted query.
        got_dim: usize,
        /// Whether the query contained a NaN or infinite component.
        non_finite: bool,
    },
    /// The request's deadline budget is already unmeetable at admission:
    /// the estimated queue wait (tenant lane depth over the recent drain
    /// rate) exceeds the whole end-to-end budget, so queueing it would
    /// only burn a batch slot on a guaranteed miss. Only produced when
    /// [`DeadlinePolicy::enforce`](crate::DeadlinePolicy) is on.
    DeadlineUnmeetable {
        /// The submitting tenant.
        tenant: TenantId,
        /// The request's end-to-end budget in seconds.
        budget: f64,
        /// The estimated queue wait in seconds that made it unmeetable.
        estimated_wait: f64,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { tenant, capacity } => {
                write!(f, "{tenant} queue full (capacity {capacity})")
            }
            AdmissionError::UnknownTenant { tenant, n_tenants } => {
                write!(f, "{tenant} not configured ({n_tenants} tenants)")
            }
            AdmissionError::InvalidQuery {
                expected_dim,
                got_dim,
                non_finite,
            } => {
                if *non_finite {
                    write!(f, "query contains a non-finite (NaN/Inf) component")
                } else {
                    write!(
                        f,
                        "query has {got_dim} dimensions but the index serves {expected_dim}"
                    )
                }
            }
            AdmissionError::DeadlineUnmeetable {
                tenant,
                budget,
                estimated_wait,
            } => {
                write!(
                    f,
                    "{tenant} deadline budget {:.3}s unmeetable (estimated queue wait {:.3}s)",
                    budget, estimated_wait
                )
            }
            AdmissionError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Generation-stage phase timings of one co-scheduled request, all in
/// seconds. Present only when the server runs with a
/// [`GenerationConfig`](crate::GenerationConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationTimings {
    /// Merged top-k → prefill iteration start (waiting for KV space and a
    /// prefill slot in the engine).
    pub gen_queue: f64,
    /// Prefill iteration start → first token.
    pub prefill: f64,
    /// First token → last token (decode).
    pub decode: f64,
    /// Admission → first token: `queue + search + gen_queue + prefill`,
    /// the paper's headline end-to-end metric.
    pub ttft: f64,
}

/// Timeline of one served request, all in seconds (wall clock in
/// production, virtual [`Clock`](crate::Clock) time in deterministic
/// tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTimings {
    /// Admission → batch launch (queueing delay).
    pub queue: f64,
    /// Batch launch → merged top-k available (search execution).
    pub search: f64,
    /// Admission → final delivery: the merged top-k for retrieval-only
    /// servers, the last generated token for co-scheduled ones.
    pub e2e: f64,
    /// Generation phases and TTFT; `None` on retrieval-only servers.
    pub generation: Option<GenerationTimings>,
}

/// The merged retrieval result for one request.
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// Request id (assigned at admission).
    pub id: u64,
    /// The tenant that submitted the request.
    pub tenant: TenantId,
    /// Final merged top-k neighbors.
    pub neighbors: Vec<Neighbor>,
    /// Per-stage wall-clock timings.
    pub timings: RequestTimings,
    /// The request's cache hit rate (GPU probes / total probes) under the
    /// placement that served it.
    pub hit_rate: f64,
    /// Placement generation that served the request (increments on every
    /// online repartition).
    pub generation: u64,
    /// The request's 128-bit trace id (caller-supplied `traceparent` or
    /// derived deterministically at admission).
    pub trace: TraceId,
}

/// A handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) tenant: TenantId,
    pub(crate) deadline: Option<SimTime>,
    pub(crate) trace: TraceId,
    pub(crate) rx: Receiver<SearchResponse>,
}

impl Ticket {
    /// The admitted request's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant the request was admitted under.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The request's absolute end-to-end deadline on the server's
    /// [`Clock`](crate::Clock), when it carries one (an explicit
    /// per-request deadline or the policy default stamped at admission).
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// The request's 128-bit trace id: the caller's `traceparent` when one
    /// was supplied, otherwise derived deterministically at admission.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Blocks until the request completes. Returns `None` only if the
    /// server was torn down before serving it.
    pub fn wait(self) -> Option<SearchResponse> {
        self.rx.recv().ok()
    }

    /// Blocks up to `timeout`; `Ok(None)` means the server went away,
    /// `Err(self)` that the request is still in flight.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Option<SearchResponse>, Ticket> {
        match self.rx.recv_timeout(timeout) {
            Ok(response) => Ok(Some(response)),
            Err(RecvTimeoutError::Disconnected) => Ok(None),
            Err(RecvTimeoutError::Timeout) => Err(self),
        }
    }
}

/// An admitted request travelling through the runtime (internal).
#[derive(Debug)]
pub(crate) struct Job {
    pub id: u64,
    pub tenant: TenantId,
    pub query: Vec<f32>,
    /// Admission timestamp on the server's [`Clock`](crate::Clock).
    pub enqueued: SimTime,
    /// Absolute end-to-end deadline, when the request carries a budget.
    /// `None` = unbudgeted: never shed or degraded on deadline grounds.
    pub deadline: Option<SimTime>,
    /// The request's trace id for causal span recording.
    pub trace: TraceId,
    pub reply: Sender<SearchResponse>,
}

impl Job {
    /// The request's total budget in seconds (`deadline - enqueued`), when
    /// it carries one.
    pub(crate) fn budget_secs(&self) -> Option<f64> {
        self.deadline
            .map(|d| d.duration_since(self.enqueued).as_secs_f64())
    }
}
