//! The online control loop (§IV-B3 at runtime).
//!
//! The dispatcher streams one [`Observation`] per completed request into
//! this loop: the request's cache hit rate under the placement that served
//! it, whether the search stage met its SLO, and the query's global probe
//! set. A windowed [`DriftMonitor`] watches attainment and hit-rate
//! divergence; when it trips, the loop re-profiles from the recent probe
//! sets, re-runs Algorithm 1 ([`partition`]), re-splits, and hot-swaps the
//! router — the admission queue keeps accepting and batches keep launching
//! throughout, exactly the paper's "service never stops" full-shard update.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;

use vlite_core::{
    partition, AccessProfile, DriftMonitor, HitRateEstimator, IndexSplit, PartitionInput,
    PerfModel, Router,
};

use crate::config::ControlConfig;
use crate::server::Shared;

/// One completed request, as seen by the control loop.
#[derive(Debug)]
pub(crate) struct Observation {
    /// Cache hit rate under the serving placement.
    pub hit_rate: f64,
    /// Whether the search stage met its latency SLO.
    pub met_slo: bool,
    /// The query's global probe set (for re-profiling).
    pub probes: Vec<u32>,
}

/// One online repartition performed by the control loop.
#[derive(Debug, Clone)]
pub struct RepartitionEvent {
    /// Placement generation installed by this repartition.
    pub generation: u64,
    /// Completed requests observed when the trigger fired.
    pub at_request: u64,
    /// Cache coverage ρ before the swap.
    pub old_coverage: f64,
    /// Cache coverage ρ after the swap.
    pub new_coverage: f64,
    /// Fraction of the old hot set still hot after the swap (low overlap =
    /// the hot set genuinely moved).
    pub hot_overlap: f64,
    /// Requests waiting in the admission queue at the moment of the swap —
    /// recorded to show the queue is never drained for an update.
    pub queue_depth_at_swap: usize,
    /// Wall-clock duration of re-profile → Algorithm 1 → re-split → swap.
    pub duration: Duration,
}

/// State owned by the control thread.
pub(crate) struct ControlLoop {
    shared: Arc<Shared>,
    config: ControlConfig,
    monitor: DriftMonitor,
    expected_mean_hit: f64,
    input: PartitionInput,
    perf: PerfModel,
    /// Pinned coverage ρ (mirrors `RealConfig::coverage_override`); when
    /// set, a repartition re-chases the hot set at fixed coverage rather
    /// than adopting Algorithm 1's ρ.
    coverage_override: Option<f64>,
    /// Per-cluster vector counts/bytes (static geometry of the index).
    sizes: Vec<u64>,
    bytes: Vec<u64>,
    /// Ring of recent probe sets, the online calibration sample.
    ring: VecDeque<Vec<u32>>,
    observed: u64,
    last_repartition: u64,
}

impl ControlLoop {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shared: Arc<Shared>,
        config: ControlConfig,
        expected_mean_hit: f64,
        input: PartitionInput,
        perf: PerfModel,
        coverage_override: Option<f64>,
        sizes: Vec<u64>,
        bytes: Vec<u64>,
    ) -> Self {
        let monitor = DriftMonitor::new(config.update, expected_mean_hit);
        Self {
            shared,
            config,
            monitor,
            expected_mean_hit,
            input,
            perf,
            coverage_override,
            sizes,
            bytes,
            ring: VecDeque::new(),
            observed: 0,
            last_repartition: 0,
        }
    }

    /// Consumes observations until every dispatcher-side sender is gone.
    pub fn run(mut self, rx: Receiver<Observation>) {
        while let Ok(obs) = rx.recv() {
            self.observe(obs);
        }
    }

    fn observe(&mut self, obs: Observation) {
        self.observed += 1;
        self.monitor.observe(obs.hit_rate, obs.met_slo);
        if self.ring.len() == self.config.profile_window.max(1) {
            self.ring.pop_front();
        }
        self.ring.push_back(obs.probes);

        if self.should_repartition() {
            self.repartition();
        } else if self.monitor.window_full() {
            // Periodic counter reset, keeping the current expectation.
            self.monitor.reset(None);
        }
    }

    /// The paper's dual trigger, with an optional relaxation to
    /// hit-rate-divergence-only for hardware where the latency side is
    /// noise (see [`ControlConfig::require_slo_breach`]).
    fn should_repartition(&self) -> bool {
        if self.observed - self.last_repartition < self.config.cooldown_requests as u64 {
            return false;
        }
        if self.config.require_slo_breach {
            self.monitor.should_update()
        } else {
            let min_window = self.config.update.window_requests.min(100);
            self.monitor.window_len() >= min_window
                && (self.monitor.observed_mean_hit() - self.expected_mean_hit).abs()
                    > self.config.update.hit_rate_divergence
        }
    }

    /// Re-profile → Algorithm 1 → re-split → hot-swap, without touching the
    /// admission queue.
    fn repartition(&mut self) {
        let started = Instant::now();
        let queue_depth_at_swap = self.shared.queue.depth();

        // Stage 1: re-profile from the observed probe ring.
        let mut counts = vec![0u64; self.sizes.len()];
        for probes in &self.ring {
            for &c in probes {
                counts[c as usize] += 1;
            }
        }
        let probe_sets: Vec<Vec<u32>> = self.ring.iter().cloned().collect();
        let profile =
            AccessProfile::from_parts(counts, self.sizes.clone(), self.bytes.clone(), probe_sets);

        // Stage 2: Algorithm 1 on the refreshed profile.
        let estimator = HitRateEstimator::from_profile(&profile);
        let decision = partition(&self.input, &self.perf, &estimator, &profile);
        let coverage = self.coverage_override.unwrap_or(decision.coverage);

        // Stage 3: re-split and measure hot-set movement.
        let (old_router, _) = self.shared.placement_snapshot();
        let old_split = old_router.split();
        let old_coverage = old_split.coverage();
        let split = IndexSplit::build(&profile, coverage, old_split.n_shards());
        let old_hot: Vec<u32> = (0..self.sizes.len() as u32)
            .filter(|&c| old_split.is_hot(c))
            .collect();
        let retained = old_hot.iter().filter(|&&c| split.is_hot(c)).count();
        let hot_overlap = if old_hot.is_empty() {
            1.0
        } else {
            retained as f64 / old_hot.len() as f64
        };
        let new_coverage = split.coverage();
        let new_router = Router::new(split);
        // Refresh the expectation with the runtime's observable statistic:
        // the recent probe sets routed through the *new* placement.
        let expected_mean_hit = crate::server::empirical_mean_hit(&new_router, &self.ring);

        // Stage 4: hot-swap. Queries already routed keep their (global-id)
        // probe lists; the next batch snapshot sees the new placement, with
        // router and generation advancing under one lock.
        let generation = self.shared.install_placement(new_router);

        self.shared.record_repartition(RepartitionEvent {
            generation,
            at_request: self.observed,
            old_coverage,
            new_coverage,
            hot_overlap,
            queue_depth_at_swap,
            duration: started.elapsed(),
        });
        self.monitor.reset(Some(expected_mean_hit));
        self.expected_mean_hit = expected_mean_hit;
        self.last_repartition = self.observed;
    }
}
