//! The online control loop (§IV-B3 at runtime).
//!
//! The dispatcher streams one [`Observation`] per completed request into
//! this loop: the request's cache hit rate under the placement that served
//! it, whether the search stage met its SLO, and the query's global probe
//! set. One windowed [`DriftMonitor`] *per tenant* watches attainment and
//! hit-rate divergence — a small tenant's hot-set shift trips its own
//! monitor instead of being averaged away by a large tenant's stable
//! traffic — and when any monitor trips, the loop re-profiles from the
//! recent probe sets, re-runs Algorithm 1 ([`partition`]), re-splits, and
//! hot-swaps the router — the admission queue keeps accepting and batches
//! keep launching throughout, exactly the paper's "service never stops"
//! full-shard update. When the runtime scans through a tiered store, the
//! loop also emits a [`MigrationOrder`](crate::migrate::MigrationOrder)
//! after each swap so the background migrator moves cluster extents to
//! match the new placement.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};

use vlite_core::{
    partition, AccessProfile, DriftMonitor, HitRateEstimator, IndexSplit, PartitionInput,
    PerfModel, Router,
};

use crate::config::ControlConfig;
use crate::migrate::MigrationOrder;
use crate::request::TenantId;
use crate::server::Shared;

/// One completed request, as seen by the control loop.
#[derive(Debug)]
pub(crate) struct Observation {
    /// The tenant that submitted the request (repartition events report
    /// which tenants' traffic drove the trigger).
    pub tenant: TenantId,
    /// Cache hit rate under the serving placement.
    pub hit_rate: f64,
    /// Whether the search stage met its latency SLO.
    pub met_slo: bool,
    /// The query's global probe set (for re-profiling).
    pub probes: Vec<u32>,
}

/// One online repartition performed by the control loop.
#[derive(Debug, Clone)]
pub struct RepartitionEvent {
    /// Placement generation installed by this repartition.
    pub generation: u64,
    /// Completed requests observed when the trigger fired.
    pub at_request: u64,
    /// The tenant whose [`DriftMonitor`] tripped this repartition (the
    /// monitors are per-tenant, so a small tenant's drift is attributable
    /// even under a large tenant's stable flood).
    pub triggered_by: TenantId,
    /// Per-tenant observation counts since the previous repartition —
    /// whose traffic the triggering window (and re-profiling sample) was
    /// made of.
    pub observed_by_tenant: Vec<u64>,
    /// Cache coverage ρ before the swap.
    pub old_coverage: f64,
    /// Cache coverage ρ after the swap.
    pub new_coverage: f64,
    /// Fraction of the old hot set still hot after the swap (low overlap =
    /// the hot set genuinely moved).
    pub hot_overlap: f64,
    /// Requests waiting in the admission queue at the moment of the swap —
    /// sampled immediately before `install_placement`, after the rebuild
    /// stages — recorded to show the queue is never drained for an update.
    pub queue_depth_at_swap: usize,
    /// Wall-clock duration of re-profile → Algorithm 1 → re-split → swap.
    pub duration: Duration,
}

/// State owned by the control thread.
pub(crate) struct ControlLoop {
    shared: Arc<Shared>,
    config: ControlConfig,
    /// One drift monitor per tenant, indexed by [`TenantId`].
    monitors: Vec<DriftMonitor>,
    expected_mean_hit: f64,
    input: PartitionInput,
    perf: PerfModel,
    /// Pinned coverage ρ (mirrors `RealConfig::coverage_override`); when
    /// set, a repartition re-chases the hot set at fixed coverage rather
    /// than adopting Algorithm 1's ρ.
    coverage_override: Option<f64>,
    /// Per-cluster vector counts/bytes (static geometry of the index).
    sizes: Vec<u64>,
    bytes: Vec<u64>,
    /// Ring of recent probe sets, the online calibration sample.
    ring: VecDeque<Vec<u32>>,
    observed: u64,
    /// Observations per tenant since the last repartition.
    observed_by_tenant: Vec<u64>,
    last_repartition: u64,
    /// Where tier-migration orders go after each swap (inert when the
    /// runtime has no tiered store).
    migrate_tx: Sender<MigrationOrder>,
}

impl ControlLoop {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shared: Arc<Shared>,
        config: ControlConfig,
        expected_mean_hit: f64,
        input: PartitionInput,
        perf: PerfModel,
        coverage_override: Option<f64>,
        sizes: Vec<u64>,
        bytes: Vec<u64>,
        migrate_tx: Sender<MigrationOrder>,
    ) -> Self {
        let n_tenants = shared.tenants.len();
        let monitors = (0..n_tenants)
            .map(|_| DriftMonitor::new(config.update, expected_mean_hit))
            .collect();
        Self {
            shared,
            config,
            monitors,
            expected_mean_hit,
            input,
            perf,
            coverage_override,
            sizes,
            bytes,
            ring: VecDeque::new(),
            observed: 0,
            observed_by_tenant: vec![0; n_tenants],
            last_repartition: 0,
            migrate_tx,
        }
    }

    /// Consumes observations until every dispatcher-side sender is gone.
    pub fn run(mut self, rx: Receiver<Observation>) {
        while let Ok(obs) = rx.recv() {
            self.observe(obs);
        }
    }

    pub(crate) fn observe(&mut self, obs: Observation) {
        self.observed += 1;
        let tenant = obs.tenant.index();
        self.observed_by_tenant[tenant] += 1;
        self.monitors[tenant].observe(obs.hit_rate, obs.met_slo);
        if self.ring.len() == self.config.profile_window.max(1) {
            self.ring.pop_front();
        }
        self.ring.push_back(obs.probes);

        if let Some(tripped) = self.should_repartition() {
            self.repartition(tripped);
        } else if !self.in_cooldown() {
            // Periodic counter reset per full monitor, keeping the current
            // expectation. Skipped during cooldown: a drift window
            // accumulated while repartitioning is forbidden must survive
            // until the cooldown expires, so genuine drift triggers
            // promptly instead of re-accumulating a whole window from
            // scratch.
            for monitor in &mut self.monitors {
                if monitor.window_full() {
                    monitor.reset(None);
                }
            }
        }
    }

    /// Whether the post-repartition cooldown is still in effect (also
    /// covers start-up: the initial profile deserves the same settling
    /// period as a fresh swap).
    fn in_cooldown(&self) -> bool {
        self.observed - self.last_repartition < self.config.cooldown_requests as u64
    }

    /// The paper's dual trigger, evaluated per tenant — returns the first
    /// tenant whose monitor trips — with an optional relaxation to
    /// hit-rate-divergence-only for hardware where the latency side is
    /// noise (see [`ControlConfig::require_slo_breach`]).
    fn should_repartition(&self) -> Option<TenantId> {
        if self.in_cooldown() {
            return None;
        }
        for (t, monitor) in self.monitors.iter().enumerate() {
            let tripped = if self.config.require_slo_breach {
                monitor.should_update()
            } else {
                let min_window = self.config.update.window_requests.min(100);
                monitor.window_len() >= min_window
                    && (monitor.observed_mean_hit() - self.expected_mean_hit).abs()
                        > self.config.update.hit_rate_divergence
            };
            if tripped {
                return Some(TenantId(t as u16));
            }
        }
        None
    }

    /// Re-profile → Algorithm 1 → re-split → hot-swap, without touching the
    /// admission queue.
    fn repartition(&mut self, triggered_by: TenantId) {
        let started = self.shared.clock.now();

        // Stage 1: re-profile from the observed probe ring.
        let mut counts = vec![0u64; self.sizes.len()];
        for probes in &self.ring {
            for &c in probes {
                counts[c as usize] += 1;
            }
        }
        let probe_sets: Vec<Vec<u32>> = self.ring.iter().cloned().collect();
        let profile =
            AccessProfile::from_parts(counts, self.sizes.clone(), self.bytes.clone(), probe_sets);

        // Stage 2: Algorithm 1 on the refreshed profile.
        let estimator = HitRateEstimator::from_profile(&profile);
        let decision = partition(&self.input, &self.perf, &estimator, &profile);
        let coverage = self.coverage_override.unwrap_or(decision.coverage);

        // Stage 3: re-split and measure hot-set movement.
        let (old_router, _) = self.shared.placement_snapshot();
        let old_split = old_router.split();
        let old_coverage = old_split.coverage();
        let split = IndexSplit::build(&profile, coverage, old_split.n_shards());
        let old_hot: Vec<u32> = (0..self.sizes.len() as u32)
            .filter(|&c| old_split.is_hot(c))
            .collect();
        let retained = old_hot.iter().filter(|&&c| split.is_hot(c)).count();
        let hot_overlap = if old_hot.is_empty() {
            1.0
        } else {
            retained as f64 / old_hot.len() as f64
        };
        let new_coverage = split.coverage();
        // Tiered runtimes also need the new hot set (for the migrator);
        // read it off the split in hand before the router consumes it.
        let hot_flags: Option<Vec<bool>> = self.shared.store.is_some().then(|| {
            (0..self.sizes.len() as u32)
                .map(|c| split.is_hot(c))
                .collect()
        });
        let new_router = Router::new(split);
        // Refresh the expectation with the runtime's observable statistic:
        // the recent probe sets routed through the *new* placement.
        let expected_mean_hit = crate::server::empirical_mean_hit(&new_router, &self.ring);

        // Stage 4: hot-swap. Queries already routed keep their (global-id)
        // probe lists; the next batch snapshot sees the new placement, with
        // router and generation advancing under one lock. The queue depth
        // is sampled here — immediately before the swap, after the rebuild
        // stages above — so the event reports the backlog *at the moment of
        // the swap*, not at trigger time.
        let queue_depth_at_swap = self.shared.queue.depth();
        let generation = self.shared.install_placement(new_router);

        // Stage 5 (tiered runtimes): hand the new hot set to the migrator,
        // which promotes/demotes cluster extents in the background while
        // batches keep launching against whatever tier each cluster is on.
        if let Some(hot) = hot_flags {
            let _ = self.migrate_tx.send(MigrationOrder {
                placement_generation: generation,
                triggered_by,
                hot,
            });
        }

        self.shared.record_repartition(RepartitionEvent {
            generation,
            at_request: self.observed,
            triggered_by,
            observed_by_tenant: std::mem::replace(
                &mut self.observed_by_tenant,
                vec![0; self.shared.tenants.len()],
            ),
            old_coverage,
            new_coverage,
            hot_overlap,
            queue_depth_at_swap,
            duration: (self.shared.clock.now() - started).to_std(),
        });
        for monitor in &mut self.monitors {
            monitor.reset(Some(expected_mean_hit));
        }
        self.expected_mean_hit = expected_mean_hit;
        self.last_repartition = self.observed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ServeConfig, TenantSpec};
    use crate::obs::{BoundedRing, ObsConfig, ObsPlane};
    use crate::queue::AdmissionQueue;
    use crate::request::Job;
    use crate::server::{PlacementState, ServeMetrics, Shared};
    use std::sync::atomic::AtomicU64;
    use std::sync::{Mutex, RwLock};
    use vlite_core::{RealConfig, RealDeployment, UpdateConfig};
    use vlite_workload::{CorpusConfig, SyntheticCorpus};

    /// Builds a minimal `Shared` + `ControlLoop` over a tiny real
    /// deployment, so `observe`/`repartition` can be driven synchronously
    /// without spawning the runtime threads.
    fn harness(
        cooldown: usize,
        window: usize,
        n_tenants: usize,
    ) -> (Arc<Shared>, ControlLoop, Vec<Vec<u32>>) {
        harness_with_deadline(
            cooldown,
            window,
            n_tenants,
            crate::config::DeadlinePolicy::default(),
        )
    }

    /// [`harness`] with an explicit deadline policy — the admission-shed
    /// tests need `enforce` on, which the default policy keeps off.
    fn harness_with_deadline(
        cooldown: usize,
        window: usize,
        n_tenants: usize,
        deadline: crate::config::DeadlinePolicy,
    ) -> (Arc<Shared>, ControlLoop, Vec<Vec<u32>>) {
        let corpus = SyntheticCorpus::generate(&CorpusConfig {
            n_vectors: 2_000,
            dim: 8,
            n_centers: 16,
            zipf_exponent: 1.1,
            noise: 0.25,
            seed: 21,
        });
        let mut real = RealConfig::small();
        real.ivf = vlite_ann::IvfConfig::new(32);
        real.n_shards = 2;
        real.coverage_override = Some(0.3);
        let deployment = RealDeployment::build(&corpus, real.clone()).expect("builds");
        let RealDeployment {
            index,
            profile,
            perf,
            router,
            ..
        } = deployment;
        let probe_sets: Vec<Vec<u32>> = profile.probe_sets().to_vec();
        let sizes: Vec<u64> = (0..profile.nlist() as u32)
            .map(|c| profile.size(c))
            .collect();
        let bytes: Vec<u64> = (0..profile.nlist() as u32)
            .map(|c| profile.bytes_of(c))
            .collect();
        let tenants: Vec<TenantSpec> = (0..n_tenants)
            .map(|_| TenantSpec {
                weight: 1,
                queue_capacity: 64,
                slo_search: real.slo_search,
            })
            .collect();
        let shared = Arc::new(Shared {
            index,
            placement: RwLock::new(PlacementState {
                router: Arc::new(router),
                generation: 0,
            }),
            queue: AdmissionQueue::new(&tenants),
            metrics: Mutex::new(ServeMetrics::new(real.slo_search, None, &tenants)),
            worker_panics: AtomicU64::new(0),
            tenants,
            repartitions: BoundedRing::new(1024),
            migrations: BoundedRing::new(1024),
            obs: Arc::new(ObsPlane::new(&ObsConfig::default())),
            store: None,
            blocked_scans: true,
            nprobe: real.nprobe,
            top_k: real.top_k,
            n_shards: 2,
            slo_search: real.slo_search,
            clock: Arc::new(crate::clock::VirtualClock::new()),
            generation: None,
            slo_signal: crate::config::SloSignal::Search,
            deadline,
            trace: Arc::new(crate::trace::TracePlane::new(
                &crate::config::TraceConfig::default(),
                7,
            )),
        });
        let mut config = ServeConfig::small().control;
        config.update = UpdateConfig {
            slo_attainment_threshold: 0.9,
            hit_rate_divergence: 0.1,
            window_requests: window,
        };
        config.cooldown_requests = cooldown;
        config.profile_window = 512;
        config.require_slo_breach = true;
        let input = PartitionInput::new(real.slo_search, real.mu_llm0, real.kv_bytes_full);
        let (migrate_tx, _migrate_rx) = crossbeam::channel::unbounded();
        let control = ControlLoop::new(
            shared.clone(),
            config,
            // Expectation far above the drifted observations fed by the
            // tests, so divergence is unambiguous.
            0.9,
            input,
            perf,
            Some(0.3),
            sizes,
            bytes,
            migrate_tx,
        );
        (shared, control, probe_sets)
    }

    fn drifted(probe_sets: &[Vec<u32>], i: usize) -> Observation {
        Observation {
            tenant: TenantId(0),
            hit_rate: 0.0,
            met_slo: false,
            probes: probe_sets[i % probe_sets.len()].clone(),
        }
    }

    #[test]
    fn drift_during_cooldown_triggers_promptly_after_cooldown_expires() {
        // Window 80 < cooldown 440, and 440 is not a multiple of 80: under
        // the old behavior the periodic reset at request 400 wiped a full
        // drift window accumulated during cooldown, so the trigger could
        // not fire before request 480. With the reset skipped during
        // cooldown, the already-full window fires the moment the cooldown
        // expires, at request 440 exactly.
        let (shared, mut control, probe_sets) = harness(440, 80, 1);
        for i in 0..600 {
            control.observe(drifted(&probe_sets, i));
        }
        let events = shared.repartitions.snapshot();
        assert!(!events.is_empty(), "drift must trigger a repartition");
        assert_eq!(
            events[0].at_request, 440,
            "repartition must fire the moment cooldown expires, not after \
             re-accumulating a window (old behavior: request 480)"
        );
    }

    #[test]
    fn periodic_reset_still_runs_outside_cooldown() {
        // Healthy traffic (matching the expectation) with a short cooldown:
        // the monitor's window must keep being reset once cooldown is over,
        // never growing without bound.
        let (shared, mut control, probe_sets) = harness(50, 80, 1);
        for i in 0..500 {
            control.observe(Observation {
                tenant: TenantId(0),
                hit_rate: 0.9,
                met_slo: true,
                probes: probe_sets[i % probe_sets.len()].clone(),
            });
        }
        assert!(shared.repartitions.is_empty());
        assert!(
            control.monitors[0].window_len() <= 80,
            "window {} never reset",
            control.monitors[0].window_len()
        );
    }

    #[test]
    fn queue_depth_at_swap_reports_the_backlog_at_swap_time() {
        let (shared, mut control, probe_sets) = harness(100, 80, 1);
        for i in 0..99 {
            control.observe(drifted(&probe_sets, i));
        }
        // Backlog present when the 100th observation trips the trigger.
        for id in 0..7 {
            let (reply, _rx) = crossbeam::channel::unbounded();
            shared
                .queue
                .try_push(Job {
                    id,
                    tenant: TenantId(0),
                    query: vec![0.0; 8],
                    enqueued: vlite_sim::SimTime::ZERO,
                    deadline: None,
                    trace: crate::trace::TraceId(u128::from(id) + 1),
                    reply,
                })
                .expect("admitted");
        }
        control.observe(drifted(&probe_sets, 99));
        let events = shared.repartitions.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].queue_depth_at_swap, 7);
        assert_eq!(events[0].at_request, 100);
        assert_eq!(events[0].triggered_by, TenantId(0));
        // The triggering traffic is attributed to its tenant, and the
        // counter restarts for the next event.
        assert_eq!(events[0].observed_by_tenant, vec![100]);
        assert_eq!(control.observed_by_tenant, vec![0]);
    }

    #[test]
    fn small_tenant_drift_is_not_drowned_out_by_a_stable_large_tenant() {
        // Tenant 0 floods with perfectly healthy traffic (hit rate at the
        // expectation, SLO met); tenant 1 trickles 1-in-8 requests whose
        // hit rate has collapsed. A single global monitor would average the
        // small tenant's drift to ~0.09 divergence (< 0.1) and never fire;
        // the per-tenant monitor attributes the trigger to tenant 1.
        let (shared, mut control, probe_sets) = harness(100, 80, 2);
        let mut i = 0usize;
        while shared.repartitions.is_empty() && i < 5_000 {
            if i % 8 == 7 {
                control.observe(Observation {
                    tenant: TenantId(1),
                    hit_rate: 0.0,
                    met_slo: false,
                    probes: probe_sets[i % probe_sets.len()].clone(),
                });
            } else {
                control.observe(Observation {
                    tenant: TenantId(0),
                    hit_rate: 0.9,
                    met_slo: true,
                    probes: probe_sets[i % probe_sets.len()].clone(),
                });
            }
            i += 1;
        }
        let events = shared.repartitions.snapshot();
        assert_eq!(events.len(), 1, "small tenant's drift must trigger");
        assert_eq!(
            events[0].triggered_by,
            TenantId(1),
            "the event must name the drifting tenant"
        );
        // The large tenant's healthy traffic dominates the window, which
        // is exactly why a global monitor would have stayed silent.
        assert!(events[0].observed_by_tenant[0] > events[0].observed_by_tenant[1] * 3);
    }

    /// Backlogs tenant 0's lane with `n` jobs. No batcher thread exists in
    /// this harness, so the jobs stay queued and `estimated_wait` reads a
    /// real depth.
    fn backlog(shared: &Shared, n: u64) {
        for id in 0..n {
            let (reply, _rx) = crossbeam::channel::unbounded();
            shared
                .queue
                .try_push(Job {
                    id,
                    tenant: TenantId(0),
                    query: vec![0.0; 8],
                    enqueued: vlite_sim::SimTime::ZERO,
                    deadline: None,
                    trace: crate::trace::TraceId(u128::from(id) + 1),
                    reply,
                })
                .expect("within lane capacity");
        }
    }

    #[test]
    fn admission_shed_fires_only_when_the_queue_wait_exceeds_the_budget() {
        let policy = crate::config::DeadlinePolicy {
            enforce: true,
            ..crate::config::DeadlinePolicy::default()
        };
        let (shared, _control, _probe_sets) = harness_with_deadline(100, 80, 1, policy);
        let t0 = vlite_sim::SimTime::ZERO;
        // Seed the drain-rate EWMA: two drains of 4 jobs 10 ms apart read
        // ~400 jobs/s, then backlog the lane so the wait estimate is real.
        shared.queue.record_drain(4, t0);
        shared
            .queue
            .record_drain(4, t0 + vlite_sim::SimDuration::from_millis(10.0));
        backlog(&shared, 32);
        let wait = shared
            .queue
            .estimated_wait(TenantId(0))
            .expect("rate and depth both measured");
        assert!(wait > 0.0);

        // A budget below the estimated wait sheds, with full accounting.
        let err = shared
            .shed_if_unmeetable(TenantId(0), Some(wait / 2.0), t0)
            .expect_err("unmeetable budget must shed at admission");
        match err {
            crate::request::AdmissionError::DeadlineUnmeetable {
                tenant,
                budget,
                estimated_wait,
            } => {
                assert_eq!(tenant, TenantId(0));
                assert!((budget - wait / 2.0).abs() < 1e-12);
                assert!((estimated_wait - wait).abs() < 1e-12);
            }
            other => panic!("wrong admission error: {other:?}"),
        }
        assert_eq!(
            crate::sync::lock_recover(&shared.metrics).deadline_sheds
                [crate::obs::DEADLINE_STAGE_ADMISSION],
            1
        );
        assert!(
            shared
                .obs
                .journal_snapshot()
                .iter()
                .any(|e| e.kind == "deadline-shed" && e.detail.contains("shed at admission")),
            "admission sheds must reach the event journal"
        );

        // A budget above the estimated wait is feasible and admits.
        shared
            .shed_if_unmeetable(TenantId(0), Some(wait * 2.0), t0)
            .expect("feasible budget must admit");
        // Unbudgeted submissions never shed at admission.
        shared
            .shed_if_unmeetable(TenantId(0), None, t0)
            .expect("unbudgeted submissions always admit");
        assert_eq!(
            crate::sync::lock_recover(&shared.metrics).deadline_sheds
                [crate::obs::DEADLINE_STAGE_ADMISSION],
            1,
            "only the unmeetable budget shed"
        );
    }

    #[test]
    fn measure_only_policy_never_sheds_at_admission() {
        let (shared, _control, _probe_sets) = harness(100, 80, 1);
        let t0 = vlite_sim::SimTime::ZERO;
        shared.queue.record_drain(4, t0);
        shared
            .queue
            .record_drain(4, t0 + vlite_sim::SimDuration::from_millis(10.0));
        backlog(&shared, 32);
        let wait = shared
            .queue
            .estimated_wait(TenantId(0))
            .expect("rate and depth both measured");
        // Even a budget far below the wait admits when `enforce` is off.
        shared
            .shed_if_unmeetable(TenantId(0), Some(wait / 100.0), t0)
            .expect("measure-only policies never shed");
        assert_eq!(
            crate::sync::lock_recover(&shared.metrics).deadline_sheds
                [crate::obs::DEADLINE_STAGE_ADMISSION],
            0
        );
    }
}
