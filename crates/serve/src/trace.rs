//! Causal request tracing, continuous per-stage CPU profiling, and the SLO
//! burn-rate watchdog.
//!
//! The telemetry plane ([`crate::obs`]) answers *how slow* requests are;
//! this module answers *why*. Three cooperating pieces:
//!
//! - **Span trees** ([`TracePlane::trace_spans`], `GET /v1/trace/{id}`):
//!   every request carries a 128-bit trace id — accepted and emitted as a
//!   W3C `traceparent` header — and its lifecycle is recorded as a
//!   parent/child span tree (`request` → `queue`/`search`/generation
//!   phases). Cross-request causality is explicit: all co-batched requests
//!   share one *batch* span (in its own trace, linking every member's
//!   trace id), per-shard scans are children of that batch span, and
//!   migrations/repartitions record spans linked to the batch they stall.
//! - **Per-stage profiling** ([`TracePlane::profile`], `GET /v1/profile`):
//!   pipeline workers time their work sections against both the runtime
//!   [`Clock`](crate::Clock) (wall) and `CLOCK_THREAD_CPUTIME_ID` (CPU),
//!   so wall−CPU exposes stall time per stage; a sampling thread
//!   additionally reads every registered worker's CPU clock on a period,
//!   feeding collapsed-stack output. On a [`VirtualClock`](crate::VirtualClock)
//!   the sampler never spawns (its sleeps would fast-forward scripted
//!   time); tests pump [`TracePlane::sample_now`] explicitly.
//! - **Burn-rate watchdog** ([`TracePlane::alerts`], `GET /v1/alerts`):
//!   search / TTFT / deadline attainment feed multi-window burn rates
//!   (fast window catches sharp regressions, slow window confirms
//!   sustained burn, alert level from the *minimum* of the two), and every
//!   level transition is surfaced so the caller can journal it with a
//!   matching severity.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use vlite_metrics::cputime;
use vlite_metrics::spans::{format_trace_id, SpanRecord, SpanStore};
use vlite_sim::{SimDuration, SimTime};

use crate::config::TraceConfig;
use crate::http::json::Json;
use crate::sync::lock_recover;

/// A 128-bit trace id (W3C Trace Context `trace-id`). Never zero for a
/// live trace — the all-zero id is invalid on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", format_trace_id(self.0))
    }
}

/// splitmix64 finalizer: cheap, well-distributed id derivation without an
/// RNG dependency (and deterministic for a given seed + request id).
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn derive_id(seed: u64, salt: u64, n: u64) -> u128 {
    let hi = mix64(seed ^ salt ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let lo = mix64(n ^ seed.rotate_left(32) ^ salt.rotate_left(17));
    let id = (u128::from(hi) << 64) | u128::from(lo);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Parses a W3C `traceparent` header value, returning the trace id when
/// the header is well-formed (`{version}-{trace-id}-{parent-id}-{flags}`
/// with hex fields of the right widths and non-zero ids). Malformed or
/// forbidden (`version == ff`) values return `None` — per the spec the
/// server then starts a fresh trace rather than failing the request.
pub fn parse_traceparent(value: &str) -> Option<TraceId> {
    let mut parts = value.trim().split('-');
    let version = parts.next()?;
    if version.len() != 2 || !is_hex(version) || version.eq_ignore_ascii_case("ff") {
        return None;
    }
    let trace = parts.next()?;
    let id = vlite_metrics::spans::parse_trace_id(trace)?;
    if id == 0 {
        return None;
    }
    let parent = parts.next()?;
    if parent.len() != 16 || !is_hex(parent) || parent.bytes().all(|b| b == b'0') {
        return None;
    }
    let flags = parts.next()?;
    if flags.len() != 2 || !is_hex(flags) {
        return None;
    }
    // Version 00 defines exactly four fields; later versions may append.
    if version == "00" && parts.next().is_some() {
        return None;
    }
    Some(TraceId(id))
}

/// Renders a `traceparent` header value for `trace` with `parent_span` as
/// the server-side parent id (sampled flag always set).
pub fn format_traceparent(trace: TraceId, parent_span: u64) -> String {
    format!("00-{:032x}-{:016x}-01", trace.0, parent_span.max(1))
}

fn is_hex(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_hexdigit())
}

/// Profiled pipeline stages, indexed by the `STAGE_*` constants.
pub const PROFILE_STAGES: [&str; 8] = [
    "acceptor",
    "batcher",
    "shard_scan",
    "cpu_scan",
    "dispatch",
    "generation",
    "migrate",
    "control",
];

/// Stage index: the HTTP frontend's connection acceptor.
pub const STAGE_ACCEPTOR: usize = 0;
/// Stage index: batch formation (queue drain + routing).
pub const STAGE_BATCHER: usize = 1;
/// Stage index: hot-tier shard scan workers.
pub const STAGE_SHARD_SCAN: usize = 2;
/// Stage index: the cold-tier CPU scan worker.
pub const STAGE_CPU_SCAN: usize = 3;
/// Stage index: the dispatcher merging partials.
pub const STAGE_DISPATCH: usize = 4;
/// Stage index: the generation (LLM) worker.
pub const STAGE_GENERATION: usize = 5;
/// Stage index: the background tier migrator.
pub const STAGE_MIGRATE: usize = 6;
/// Stage index: the online-repartitioning control loop.
pub const STAGE_CONTROL: usize = 7;

/// SLO signals the burn-rate watchdog tracks, indexed by the `SIG_*`
/// constants.
pub const SLO_SIGNALS: [&str; 3] = ["search", "ttft", "deadline"];

/// Signal index: search-stage latency vs the tenant's `slo_search`.
pub const SIG_SEARCH: usize = 0;
/// Signal index: end-to-end TTFT vs `slo_ttft`.
pub const SIG_TTFT: usize = 1;
/// Signal index: deadline attainment (budgeted requests only).
pub const SIG_DEADLINE: usize = 2;

#[derive(Default)]
struct StageCell {
    /// Wall nanoseconds spent inside instrumented work sections.
    wall_nanos: AtomicU64,
    /// Thread CPU nanoseconds consumed inside those same sections.
    cpu_nanos: AtomicU64,
    /// Completed work sections.
    sections: AtomicU64,
    /// Thread CPU nanoseconds attributed by the sampling profiler (total
    /// per-thread CPU growth between samples, sections or not).
    sampled_cpu_nanos: AtomicU64,
    /// Samples taken of this stage's workers.
    samples: AtomicU64,
}

/// One stage's row of the `/v1/profile` breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// Stage name from [`PROFILE_STAGES`].
    pub stage: &'static str,
    /// Wall seconds inside instrumented work sections.
    pub wall_s: f64,
    /// CPU seconds consumed inside those sections.
    pub cpu_s: f64,
    /// Stalled seconds: `max(wall_s - cpu_s, 0)` — time the stage held
    /// work without burning CPU (lock waits, I/O, scheduling).
    pub stall_s: f64,
    /// Completed work sections.
    pub sections: u64,
    /// CPU seconds attributed by the sampling profiler.
    pub sampled_cpu_s: f64,
    /// Samples taken of this stage's workers.
    pub samples: u64,
}

/// An in-flight stage work section returned by [`TracePlane::stage_start`].
#[must_use = "a StageTimer records nothing until passed to stage_end"]
#[derive(Debug)]
pub struct StageTimer {
    stage: usize,
    wall_start_nanos: u64,
    cpu_start_nanos: u64,
    live: bool,
}

/// Cross-request batch context: the shared batch span every co-batched
/// request links to. Travels with the batch through scan and dispatch.
#[derive(Debug, Clone)]
pub struct BatchCtx {
    /// The batch's own trace id (distinct from any member's).
    pub trace_id: u128,
    /// The batch span's id (parent of the per-shard scan spans).
    pub span_id: u64,
    /// Trace ids of every request riding this batch.
    pub members: Vec<u128>,
}

/// Per-request span boundaries handed to [`TracePlane::record_request`],
/// all in seconds since the serving epoch.
#[derive(Debug, Clone, Copy)]
pub struct RequestSpanTimes {
    /// Admission time (root span + queue span start).
    pub enqueued_s: f64,
    /// Batch launch (queue span end, search span start).
    pub search_start_s: f64,
    /// Merge completion (search span end).
    pub search_end_s: f64,
    /// Request completion (root span end).
    pub end_s: f64,
}

/// Generation-phase durations (seconds) appended as children of the
/// request's root span, starting at `search_end_s`.
#[derive(Debug, Clone, Copy)]
pub struct GenSpans {
    /// Seconds queued before the engine admitted the request.
    pub queue_s: f64,
    /// Prefill seconds (ends at first token).
    pub prefill_s: f64,
    /// Decode seconds.
    pub decode_s: f64,
}

/// A burn-rate alert level for one SLO signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertLevel {
    /// Burn within budget.
    Ok,
    /// Both windows burning above the warn threshold.
    Warn,
    /// Both windows burning above the critical threshold.
    Critical,
}

impl AlertLevel {
    /// Lowercase name as rendered in `/v1/alerts` and journal events.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertLevel::Ok => "ok",
            AlertLevel::Warn => "warn",
            AlertLevel::Critical => "critical",
        }
    }
}

/// A watchdog level change, returned by [`TracePlane::observe_slo`] so the
/// caller can journal it with matching severity.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Signal name from [`SLO_SIGNALS`].
    pub signal: &'static str,
    /// Level before this observation.
    pub from: AlertLevel,
    /// Level after this observation.
    pub to: AlertLevel,
    /// Fast-window burn rate at the transition.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition.
    pub slow_burn: f64,
}

/// One signal's current alert state, as rendered by `/v1/alerts`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertState {
    /// Signal name from [`SLO_SIGNALS`].
    pub signal: &'static str,
    /// Current level.
    pub level: AlertLevel,
    /// Fast-window burn rate now.
    pub fast_burn: f64,
    /// Slow-window burn rate now.
    pub slow_burn: f64,
    /// Attainment target the budget derives from.
    pub target: f64,
    /// Good/bad observations in the slow window.
    pub observed: u64,
}

/// One time bucket of attainment observations.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    index: u64,
    good: u64,
    bad: u64,
}

/// Time-bucketed attainment ring for one signal. Buckets are
/// `bucket_s`-wide; the ring holds enough to cover the slow window.
struct BurnRing {
    buckets: std::collections::VecDeque<Bucket>,
    cap: usize,
}

impl BurnRing {
    fn new(cap: usize) -> Self {
        Self {
            buckets: std::collections::VecDeque::new(),
            cap,
        }
    }

    fn record(&mut self, index: u64, ok: bool) {
        match self.buckets.back_mut() {
            Some(last) if last.index == index => {
                if ok {
                    last.good += 1;
                } else {
                    last.bad += 1;
                }
            }
            _ => {
                if self.buckets.len() >= self.cap {
                    self.buckets.pop_front();
                }
                self.buckets.push_back(Bucket {
                    index,
                    good: u64::from(ok),
                    bad: u64::from(!ok),
                });
            }
        }
    }

    /// (bad, total) over the `window_buckets` most recent bucket indices
    /// ending at `now_index`.
    fn window(&self, now_index: u64, window_buckets: u64) -> (u64, u64) {
        let first = now_index.saturating_sub(window_buckets.saturating_sub(1));
        let mut bad = 0;
        let mut total = 0;
        for bucket in &self.buckets {
            if bucket.index >= first && bucket.index <= now_index {
                bad += bucket.bad;
                total += bucket.good + bucket.bad;
            }
        }
        (bad, total)
    }
}

struct Watchdog {
    rings: Vec<BurnRing>,
    levels: Vec<AlertLevel>,
}

/// The causal-tracing + profiling + alerting plane. One per
/// [`RagServer`](crate::RagServer); cheap no-ops when disabled.
pub struct TracePlane {
    enabled: bool,
    store: SpanStore,
    seed: u64,
    next_span: AtomicU64,
    next_batch: AtomicU64,
    next_migration: AtomicU64,
    stages: [StageCell; PROFILE_STAGES.len()],
    /// (stage, tid, last observed CPU nanos) per registered worker.
    registry: Mutex<Vec<(usize, u32, u64)>>,
    current_batch: Mutex<Option<BatchCtx>>,
    watchdog: Mutex<Watchdog>,
    sampler_stop: AtomicBool,
    slo_target: f64,
    fast_window_s: f64,
    slow_window_s: f64,
    warn_burn: f64,
    critical_burn: f64,
    bucket_s: f64,
    sample_interval_s: f64,
}

impl std::fmt::Debug for TracePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracePlane")
            .field("enabled", &self.enabled)
            .field("store", &self.store)
            .finish()
    }
}

impl TracePlane {
    /// Builds a plane from `config`; `seed` makes derived trace ids
    /// deterministic per server.
    ///
    /// # Panics
    ///
    /// Panics when the config is unservable (see [`TraceConfig`] field
    /// docs for the constraints).
    pub fn new(config: &TraceConfig, seed: u64) -> Self {
        config.validate();
        // Bucket the slow window into ~120 slots so the fast window (>= a
        // tenth of it in every sane config) still spans several buckets.
        let bucket_s = (config.slow_window_s / 120.0).max(1e-6);
        let cap = 130; // slow window (120 buckets) plus slack for skew
        Self {
            enabled: config.enabled,
            store: SpanStore::new(if config.enabled {
                config.trace_capacity
            } else {
                0
            }),
            seed,
            next_span: AtomicU64::new(1),
            next_batch: AtomicU64::new(1),
            next_migration: AtomicU64::new(1),
            stages: Default::default(),
            registry: Mutex::new(Vec::new()),
            current_batch: Mutex::new(None),
            watchdog: Mutex::new(Watchdog {
                rings: (0..SLO_SIGNALS.len()).map(|_| BurnRing::new(cap)).collect(),
                levels: vec![AlertLevel::Ok; SLO_SIGNALS.len()],
            }),
            sampler_stop: AtomicBool::new(false),
            slo_target: config.slo_target,
            fast_window_s: config.fast_window_s,
            slow_window_s: config.slow_window_s,
            warn_burn: config.warn_burn,
            critical_burn: config.critical_burn,
            bucket_s,
            sample_interval_s: config.sample_interval_s,
        }
    }

    /// Whether tracing is on at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Sampling period for the profiler thread.
    pub fn sample_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.sample_interval_s)
    }

    /// Tells the profiler thread to exit at its next wake.
    pub fn stop_sampler(&self) {
        // relaxed: a one-way stop flag polled each sampler wake; no data
        // is published through it.
        self.sampler_stop.store(true, Ordering::Relaxed);
    }

    /// Whether [`TracePlane::stop_sampler`] has been called.
    pub fn sampler_stopped(&self) -> bool {
        // relaxed: same one-way stop flag as above.
        self.sampler_stop.load(Ordering::Relaxed)
    }

    /// A fresh trace id for request `request_id` (used when the client
    /// sent no — or a malformed — `traceparent`).
    pub fn derive_trace_id(&self, request_id: u64) -> TraceId {
        TraceId(derive_id(self.seed, 0x7261_6365, request_id))
    }

    fn next_span_id(&self) -> u64 {
        // relaxed: a unique-id counter; only atomicity matters.
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    // ---- span recording -------------------------------------------------

    /// Opens the shared batch span for a batch whose member requests carry
    /// `members`. Returns `None` when tracing is disabled or the batch is
    /// empty. The returned context travels with the batch; close it with
    /// [`TracePlane::end_batch`].
    pub fn begin_batch(&self, members: &[TraceId]) -> Option<BatchCtx> {
        if !self.enabled || members.is_empty() {
            return None;
        }
        // relaxed: a unique-id counter; only atomicity matters.
        let n = self.next_batch.fetch_add(1, Ordering::Relaxed);
        let ctx = BatchCtx {
            trace_id: derive_id(self.seed, 0x6261_7463, n),
            span_id: self.next_span_id(),
            members: members.iter().map(|t| t.0).collect(),
        };
        *lock_recover(&self.current_batch) = Some(ctx.clone());
        Some(ctx)
    }

    /// Records the batch span (linking every member's trace id) and
    /// retires the batch from "currently in flight".
    pub fn end_batch(&self, ctx: &BatchCtx, start: SimTime, end: SimTime) {
        if !self.enabled {
            return;
        }
        self.store.record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: None,
            name: "batch".into(),
            start_s: secs(start),
            end_s: secs(end).max(secs(start)),
            links: ctx.members.clone(),
        });
        let mut current = lock_recover(&self.current_batch);
        if current.as_ref().is_some_and(|c| c.trace_id == ctx.trace_id) {
            *current = None;
        }
    }

    /// Records one scan-work child span (`scan:shard{n}` / `scan:cpu`)
    /// under the batch span.
    pub fn record_scan(&self, ctx: &BatchCtx, name: String, start: SimTime, end: SimTime) {
        if !self.enabled {
            return;
        }
        self.store.record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: self.next_span_id(),
            parent_id: Some(ctx.span_id),
            name,
            start_s: secs(start),
            end_s: secs(end).max(secs(start)),
            links: Vec::new(),
        });
    }

    /// Records one request's span tree: a `request` root spanning
    /// admission → completion, `queue` and `search` children (the search
    /// span links the batch trace the request rode), optional generation
    /// phase children, and a zero-width `shed:{reason}` marker when the
    /// request was shed.
    pub fn record_request(
        &self,
        trace: TraceId,
        batch: Option<u128>,
        times: RequestSpanTimes,
        gen: Option<GenSpans>,
        shed: Option<&str>,
    ) {
        if !self.enabled {
            return;
        }
        // Clamp boundaries into a monotone chain so the recorded tree is
        // well-formed even if a real-clock stamp landed out of order.
        let t0 = times.enqueued_s;
        let t1 = times.search_start_s.max(t0);
        let t2 = times.search_end_s.max(t1);
        let t3 = times.end_s.max(t2);
        let root = self.next_span_id();
        self.store.record(SpanRecord {
            trace_id: trace.0,
            span_id: root,
            parent_id: None,
            name: "request".into(),
            start_s: t0,
            end_s: t3,
            links: Vec::new(),
        });
        self.store.record(SpanRecord {
            trace_id: trace.0,
            span_id: self.next_span_id(),
            parent_id: Some(root),
            name: "queue".into(),
            start_s: t0,
            end_s: t1,
            links: Vec::new(),
        });
        self.store.record(SpanRecord {
            trace_id: trace.0,
            span_id: self.next_span_id(),
            parent_id: Some(root),
            name: "search".into(),
            start_s: t1,
            end_s: t2,
            links: batch.into_iter().collect(),
        });
        if let Some(gen) = gen {
            let gq = (t2 + gen.queue_s.max(0.0)).min(t3);
            let gp = (gq + gen.prefill_s.max(0.0)).min(t3);
            let gd = (gp + gen.decode_s.max(0.0)).min(t3);
            for (name, start, end) in [
                ("gen_queue", t2, gq),
                ("gen_prefill", gq, gp),
                ("gen_decode", gp, gd),
            ] {
                self.store.record(SpanRecord {
                    trace_id: trace.0,
                    span_id: self.next_span_id(),
                    parent_id: Some(root),
                    name: name.into(),
                    start_s: start,
                    end_s: end,
                    links: Vec::new(),
                });
            }
        }
        if let Some(reason) = shed {
            self.store.record(SpanRecord {
                trace_id: trace.0,
                span_id: self.next_span_id(),
                parent_id: Some(root),
                name: format!("shed:{reason}"),
                start_s: t3,
                end_s: t3,
                links: Vec::new(),
            });
        }
    }

    /// Records a migration/repartition span in its own trace, linked to
    /// the batch currently in flight (the requests the work stalls); the
    /// stalled batch's trace also gets a zero-width `stall:{name}` marker
    /// pointing back, so both directions are discoverable.
    ///
    /// Returns the span's own trace id when recorded.
    pub fn record_migration(&self, name: &str, start: SimTime, end: SimTime) -> Option<TraceId> {
        if !self.enabled {
            return None;
        }
        // relaxed: a unique-id counter; only atomicity matters.
        let n = self.next_migration.fetch_add(1, Ordering::Relaxed);
        let trace_id = derive_id(self.seed, 0x6d69_6772, n);
        let stalled = lock_recover(&self.current_batch).clone();
        let mut links = Vec::new();
        if let Some(ctx) = &stalled {
            links.push(ctx.trace_id);
            links.extend(ctx.members.iter().copied());
        }
        self.store.record(SpanRecord {
            trace_id,
            span_id: self.next_span_id(),
            parent_id: None,
            name: name.to_string(),
            start_s: secs(start),
            end_s: secs(end).max(secs(start)),
            links,
        });
        if let Some(ctx) = &stalled {
            self.store.record(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: self.next_span_id(),
                parent_id: Some(ctx.span_id),
                name: format!("stall:{name}"),
                start_s: secs(start),
                end_s: secs(start),
                links: vec![trace_id],
            });
        }
        Some(TraceId(trace_id))
    }

    /// All spans recorded for `trace_id`, if the trace is still held.
    pub fn trace_spans(&self, trace_id: u128) -> Option<Vec<SpanRecord>> {
        self.store.get(trace_id)
    }

    /// Distinct traces currently held.
    pub fn traces_held(&self) -> usize {
        self.store.len()
    }

    /// Whole traces evicted so far.
    pub fn traces_evicted(&self) -> u64 {
        self.store.evicted()
    }

    /// The trace as JSON: its spans plus (one level of) the traces its
    /// spans link to. `None` when the trace is unknown or evicted.
    pub fn trace_json(&self, trace_id: u128) -> Option<Json> {
        let spans = self.store.get(trace_id)?;
        let mut linked_ids: Vec<u128> = Vec::new();
        for span in &spans {
            for link in &span.links {
                if *link != trace_id && !linked_ids.contains(link) {
                    linked_ids.push(*link);
                }
            }
        }
        let linked: Vec<Json> = linked_ids
            .iter()
            .filter_map(|id| {
                self.store.get(*id).map(|spans| {
                    Json::Obj(vec![
                        ("trace_id".into(), Json::Str(format_trace_id(*id))),
                        (
                            "spans".into(),
                            Json::Arr(spans.iter().map(span_json).collect()),
                        ),
                    ])
                })
            })
            .collect();
        Some(Json::Obj(vec![
            ("trace_id".into(), Json::Str(format_trace_id(trace_id))),
            (
                "spans".into(),
                Json::Arr(spans.iter().map(span_json).collect()),
            ),
            ("linked".into(), Json::Arr(linked)),
        ]))
    }

    /// The trace (plus linked traces) as a Chrome `trace_event` JSON
    /// document loadable in `about://tracing` / Perfetto.
    pub fn chrome_json(&self, trace_id: u128) -> Option<Json> {
        let spans = self.store.get(trace_id)?;
        let mut events = Vec::new();
        let mut emit = |spans: &[SpanRecord], tid: u64| {
            for span in spans {
                events.push(Json::Obj(vec![
                    ("name".into(), Json::Str(span.name.clone())),
                    ("cat".into(), Json::Str("vlite".into())),
                    ("ph".into(), Json::Str("X".into())),
                    ("ts".into(), Json::Num(span.start_s * 1e6)),
                    (
                        "dur".into(),
                        Json::Num((span.end_s - span.start_s).max(0.0) * 1e6),
                    ),
                    ("pid".into(), Json::Num(1.0)),
                    ("tid".into(), Json::Num(tid as f64)),
                    (
                        "args".into(),
                        Json::Obj(vec![
                            ("trace_id".into(), Json::Str(format_trace_id(span.trace_id))),
                            (
                                "links".into(),
                                Json::Arr(
                                    span.links
                                        .iter()
                                        .map(|l| Json::Str(format_trace_id(*l)))
                                        .collect(),
                                ),
                            ),
                        ]),
                    ),
                ]));
            }
        };
        emit(&spans, 1);
        let mut linked_ids: Vec<u128> = Vec::new();
        for span in &spans {
            for link in &span.links {
                if *link != trace_id && !linked_ids.contains(link) {
                    linked_ids.push(*link);
                }
            }
        }
        for (i, id) in linked_ids.iter().enumerate() {
            if let Some(linked) = self.store.get(*id) {
                emit(&linked, 2 + i as u64);
            }
        }
        Some(Json::Obj(vec![("traceEvents".into(), Json::Arr(events))]))
    }

    // ---- per-stage profiling --------------------------------------------

    /// Opens a work section for `stage` at wall time `now`.
    pub fn stage_start(&self, stage: usize, now: SimTime) -> StageTimer {
        if !self.enabled {
            return StageTimer {
                stage,
                wall_start_nanos: 0,
                cpu_start_nanos: 0,
                live: false,
            };
        }
        StageTimer {
            stage,
            wall_start_nanos: now.as_nanos(),
            cpu_start_nanos: cputime::self_cpu_nanos(),
            live: true,
        }
    }

    /// Closes a work section at wall time `now`, attributing wall + CPU
    /// time to the section's stage.
    pub fn stage_end(&self, timer: StageTimer, now: SimTime) {
        if !timer.live {
            return;
        }
        let cell = &self.stages[timer.stage.min(PROFILE_STAGES.len() - 1)];
        let wall = now.as_nanos().saturating_sub(timer.wall_start_nanos);
        let cpu = cputime::self_cpu_nanos().saturating_sub(timer.cpu_start_nanos);
        // relaxed: per-stage accumulators read only by the profile
        // snapshot; no ordering with other memory is required.
        cell.wall_nanos.fetch_add(wall, Ordering::Relaxed);
        cell.cpu_nanos.fetch_add(cpu, Ordering::Relaxed);
        cell.sections.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers the calling thread as a `stage` worker for the sampling
    /// profiler. Call once from each worker thread after spawn.
    pub fn register_worker(&self, stage: usize) {
        if !self.enabled {
            return;
        }
        let Some(tid) = cputime::current_tid() else {
            return;
        };
        let initial = cputime::thread_cpu_nanos(tid).unwrap_or(0);
        lock_recover(&self.registry).push((stage.min(PROFILE_STAGES.len() - 1), tid, initial));
    }

    /// Takes one profiler sample: reads every registered worker's CPU
    /// clock and attributes the growth since the previous sample to its
    /// stage. The background sampler calls this on a period (real clocks
    /// only); virtual-clock tests call it explicitly.
    pub fn sample_now(&self) {
        if !self.enabled {
            return;
        }
        let mut registry = lock_recover(&self.registry);
        for (stage, tid, last) in registry.iter_mut() {
            let Some(cpu) = cputime::thread_cpu_nanos(*tid) else {
                continue; // thread exited; its clockid no longer resolves
            };
            let delta = cpu.saturating_sub(*last);
            *last = cpu;
            let cell = &self.stages[*stage];
            // relaxed: same snapshot-only accumulators as stage_end.
            cell.sampled_cpu_nanos.fetch_add(delta, Ordering::Relaxed);
            cell.samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-stage wall/CPU/stall breakdown, one row per
    /// [`PROFILE_STAGES`] entry.
    pub fn profile(&self) -> Vec<StageProfile> {
        PROFILE_STAGES
            .iter()
            .zip(self.stages.iter())
            .map(|(name, cell)| {
                // relaxed: reading snapshot-only accumulators.
                let wall = cell.wall_nanos.load(Ordering::Relaxed) as f64 / 1e9;
                let cpu = cell.cpu_nanos.load(Ordering::Relaxed) as f64 / 1e9;
                // relaxed: same snapshot-only accumulators as above.
                let sections = cell.sections.load(Ordering::Relaxed);
                let sampled = cell.sampled_cpu_nanos.load(Ordering::Relaxed) as f64 / 1e9;
                let samples = cell.samples.load(Ordering::Relaxed);
                StageProfile {
                    stage: name,
                    wall_s: wall,
                    cpu_s: cpu,
                    stall_s: (wall - cpu).max(0.0),
                    sections,
                    sampled_cpu_s: sampled,
                    samples,
                }
            })
            .collect()
    }

    /// Collapsed-stack ("folded") output for flamegraph tooling: one
    /// `vlite;{stage} {weight}` line per stage with observed CPU time,
    /// weighted in microseconds (sampled CPU when the sampler ran,
    /// section CPU otherwise).
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for row in self.profile() {
            let weight_us = (row.sampled_cpu_s.max(row.cpu_s) * 1e6) as u64;
            if weight_us > 0 {
                out.push_str(&format!("vlite;{} {}\n", row.stage, weight_us));
            }
        }
        out
    }

    /// The `/v1/profile` document: per-stage rows plus collapsed stacks.
    pub fn profile_json(&self) -> Json {
        let rows = self
            .profile()
            .into_iter()
            .map(|row| {
                Json::Obj(vec![
                    ("stage".into(), Json::Str(row.stage.into())),
                    ("wall_s".into(), Json::Num(row.wall_s)),
                    ("cpu_s".into(), Json::Num(row.cpu_s)),
                    ("stall_s".into(), Json::Num(row.stall_s)),
                    ("sections".into(), Json::Num(row.sections as f64)),
                    ("sampled_cpu_s".into(), Json::Num(row.sampled_cpu_s)),
                    ("samples".into(), Json::Num(row.samples as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("enabled".into(), Json::Bool(self.enabled)),
            (
                "cpu_clock_supported".into(),
                Json::Bool(cputime::supported()),
            ),
            ("stages".into(), Json::Arr(rows)),
            ("collapsed".into(), Json::Str(self.collapsed_stacks())),
        ])
    }

    // ---- SLO burn-rate watchdog ------------------------------------------

    /// Feeds one attainment observation (`ok` = the signal met its target)
    /// for `signal` at wall time `now`, returning the level transition if
    /// this observation caused one.
    pub fn observe_slo(&self, signal: usize, ok: bool, now: SimTime) -> Option<AlertTransition> {
        if !self.enabled || signal >= SLO_SIGNALS.len() {
            return None;
        }
        let now_s = secs(now);
        let index = (now_s / self.bucket_s) as u64;
        let mut watchdog = lock_recover(&self.watchdog);
        watchdog.rings[signal].record(index, ok);
        let (fast, slow) = self.burns(&watchdog.rings[signal], index);
        let level = if fast.min(slow) >= self.critical_burn {
            AlertLevel::Critical
        } else if fast.min(slow) >= self.warn_burn {
            AlertLevel::Warn
        } else {
            AlertLevel::Ok
        };
        let previous = watchdog.levels[signal];
        if level == previous {
            return None;
        }
        watchdog.levels[signal] = level;
        Some(AlertTransition {
            signal: SLO_SIGNALS[signal],
            from: previous,
            to: level,
            fast_burn: fast,
            slow_burn: slow,
        })
    }

    /// (fast, slow) burn rates for one signal's ring at bucket `index`.
    /// Burn = observed bad fraction over the window divided by the error
    /// budget (`1 - target`); 1.0 means burning exactly the budget.
    fn burns(&self, ring: &BurnRing, index: u64) -> (f64, f64) {
        let budget = (1.0 - self.slo_target).max(1e-9);
        let burn = |window_s: f64| {
            let window_buckets = (window_s / self.bucket_s).ceil().max(1.0) as u64;
            let (bad, total) = ring.window(index, window_buckets);
            if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / budget
            }
        };
        (burn(self.fast_window_s), burn(self.slow_window_s))
    }

    /// Current alert state of every signal at wall time `now`.
    pub fn alerts(&self, now: SimTime) -> Vec<AlertState> {
        let index = (secs(now) / self.bucket_s) as u64;
        let watchdog = lock_recover(&self.watchdog);
        SLO_SIGNALS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let (fast, slow) = self.burns(&watchdog.rings[i], index);
                let slow_buckets = (self.slow_window_s / self.bucket_s).ceil().max(1.0) as u64;
                let (_, observed) = watchdog.rings[i].window(index, slow_buckets);
                AlertState {
                    signal: name,
                    level: watchdog.levels[i],
                    fast_burn: fast,
                    slow_burn: slow,
                    target: self.slo_target,
                    observed,
                }
            })
            .collect()
    }

    /// The `/v1/alerts` document.
    pub fn alerts_json(&self, now: SimTime) -> Json {
        let alerts = self
            .alerts(now)
            .into_iter()
            .map(|a| {
                Json::Obj(vec![
                    ("signal".into(), Json::Str(a.signal.into())),
                    ("level".into(), Json::Str(a.level.as_str().into())),
                    ("fast_burn".into(), Json::Num(a.fast_burn)),
                    ("slow_burn".into(), Json::Num(a.slow_burn)),
                    ("target".into(), Json::Num(a.target)),
                    ("observed".into(), Json::Num(a.observed as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("enabled".into(), Json::Bool(self.enabled)),
            ("fast_window_s".into(), Json::Num(self.fast_window_s)),
            ("slow_window_s".into(), Json::Num(self.slow_window_s)),
            ("warn_burn".into(), Json::Num(self.warn_burn)),
            ("critical_burn".into(), Json::Num(self.critical_burn)),
            ("alerts".into(), Json::Arr(alerts)),
        ])
    }
}

fn secs(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1e9
}

fn span_json(span: &SpanRecord) -> Json {
    Json::Obj(vec![
        ("span_id".into(), Json::Num(span.span_id as f64)),
        (
            "parent_id".into(),
            span.parent_id.map_or(Json::Null, |p| Json::Num(p as f64)),
        ),
        ("name".into(), Json::Str(span.name.clone())),
        ("start_s".into(), Json::Num(span.start_s)),
        ("end_s".into(), Json::Num(span.end_s)),
        (
            "links".into(),
            Json::Arr(
                span.links
                    .iter()
                    .map(|l| Json::Str(format_trace_id(*l)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_metrics::spans::tree_violations;

    fn plane() -> TracePlane {
        TracePlane::new(&TraceConfig::default(), 42)
    }

    #[test]
    fn traceparent_round_trips_and_rejects_malformed() {
        let trace = TraceId(0x0af7_6519_16cd_43dd_8448_eb21_1c80_319c);
        let header = format_traceparent(trace, 0x00f0_67aa_0ba9_02b7);
        assert_eq!(
            header,
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01"
        );
        assert_eq!(parse_traceparent(&header), Some(trace));

        // Spec-canonical example.
        assert_eq!(
            parse_traceparent("00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01"),
            Some(TraceId(0x0af7_6519_16cd_43dd_8448_eb21_1c80_319c))
        );
        for bad in [
            "",
            "00",
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7", // missing flags
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero parent
            "ff-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01", // forbidden version
            "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01-extra", // v00 + extra
            "00-0af7651916cd43dd8448eb211c8031-00f067aa0ba902b7-01", // short trace
            "0x-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01", // non-hex version
        ] {
            assert_eq!(parse_traceparent(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn batch_and_request_spans_form_linked_well_formed_trees() {
        let plane = plane();
        let a = plane.derive_trace_id(1);
        let b = plane.derive_trace_id(2);
        assert_ne!(a, b);

        let ctx = plane.begin_batch(&[a, b]).expect("tracing enabled");
        let t0 = SimTime::from_nanos(5_000_000);
        let t1 = SimTime::from_nanos(9_000_000);
        plane.record_scan(&ctx, "scan:shard0".into(), t0, t1);
        plane.end_batch(&ctx, t0, t1);
        for trace in [a, b] {
            plane.record_request(
                trace,
                Some(ctx.trace_id),
                RequestSpanTimes {
                    enqueued_s: 0.004,
                    search_start_s: 0.005,
                    search_end_s: 0.009,
                    end_s: 0.009,
                },
                None,
                None,
            );
        }

        let batch = plane.trace_spans(ctx.trace_id).expect("batch trace held");
        assert!(tree_violations(&batch).is_empty(), "{batch:?}");
        let batch_span = batch
            .iter()
            .find(|s| s.name == "batch")
            .expect("batch span");
        assert!(batch_span.links.contains(&a.0) && batch_span.links.contains(&b.0));
        assert!(batch
            .iter()
            .any(|s| s.name == "scan:shard0" && s.parent_id == Some(batch_span.span_id)));

        for trace in [a, b] {
            let spans = plane.trace_spans(trace.0).expect("request trace held");
            assert!(tree_violations(&spans).is_empty(), "{spans:?}");
            let search = spans.iter().find(|s| s.name == "search").expect("search");
            assert_eq!(search.links, vec![ctx.trace_id]);
            assert_eq!(search.start_s, 0.005);
            assert_eq!(search.end_s, 0.009);
        }

        let json = plane.trace_json(a.0).expect("json").render();
        assert!(json.contains("\"linked\""));
        let chrome = plane.chrome_json(a.0).expect("chrome").render();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"X\""));
    }

    #[test]
    fn migration_spans_link_the_stalled_batch_both_ways() {
        let plane = plane();
        let a = plane.derive_trace_id(7);
        let ctx = plane.begin_batch(&[a]).expect("enabled");
        let mig = plane
            .record_migration(
                "migration",
                SimTime::from_nanos(1_000),
                SimTime::from_nanos(2_000),
            )
            .expect("recorded");
        let mig_spans = plane.trace_spans(mig.0).expect("migration trace");
        assert!(mig_spans[0].links.contains(&ctx.trace_id));
        assert!(mig_spans[0].links.contains(&a.0));
        let batch_spans = plane.trace_spans(ctx.trace_id).expect("batch trace");
        assert!(batch_spans
            .iter()
            .any(|s| s.name == "stall:migration" && s.links == vec![mig.0]));
        plane.end_batch(&ctx, SimTime::ZERO, SimTime::from_nanos(3_000));

        // With no batch in flight, a migration span records with no links.
        let lone = plane
            .record_migration(
                "migration",
                SimTime::from_nanos(4_000),
                SimTime::from_nanos(5_000),
            )
            .expect("recorded");
        assert!(plane.trace_spans(lone.0).expect("held")[0].links.is_empty());
    }

    #[test]
    fn stage_timers_accumulate_wall_and_sections() {
        let plane = plane();
        let timer = plane.stage_start(STAGE_SHARD_SCAN, SimTime::from_nanos(1_000_000));
        plane.stage_end(timer, SimTime::from_nanos(4_000_000));
        let profile = plane.profile();
        let scan = &profile[STAGE_SHARD_SCAN];
        assert_eq!(scan.stage, "shard_scan");
        assert_eq!(scan.sections, 1);
        assert!((scan.wall_s - 0.003).abs() < 1e-12);
        assert!(scan.stall_s <= scan.wall_s);
    }

    #[test]
    fn sampler_attributes_cpu_growth_to_the_registered_stage() {
        if !cputime::supported() {
            return;
        }
        let plane = plane();
        plane.register_worker(STAGE_DISPATCH);
        // Burn CPU on this thread, then sample: the delta lands on dispatch.
        let mut acc = 1u64;
        for i in 0..3_000_000u64 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        assert!(acc != 0);
        plane.sample_now();
        let profile = plane.profile();
        assert!(profile[STAGE_DISPATCH].samples >= 1);
        assert!(profile[STAGE_DISPATCH].sampled_cpu_s > 0.0);
        let collapsed = plane.collapsed_stacks();
        assert!(collapsed.contains("vlite;dispatch "), "{collapsed:?}");
    }

    #[test]
    fn watchdog_escalates_and_recovers_on_burn() {
        let config = TraceConfig {
            slo_target: 0.9, // 10% budget
            warn_burn: 2.0,
            critical_burn: 5.0,
            ..TraceConfig::default()
        };
        let plane = TracePlane::new(&config, 7);
        let t = SimTime::from_nanos(1_000_000_000);

        // All good: stays Ok, no transitions.
        for _ in 0..50 {
            assert_eq!(plane.observe_slo(SIG_SEARCH, true, t), None);
        }
        // 50 bad pushes the bad fraction to 50% = burn 5.0 ≥ critical.
        let mut transitions = Vec::new();
        for _ in 0..50 {
            if let Some(tr) = plane.observe_slo(SIG_SEARCH, false, t) {
                transitions.push(tr);
            }
        }
        assert!(!transitions.is_empty());
        assert_eq!(
            transitions.last().expect("transition").to,
            AlertLevel::Critical
        );
        let alerts = plane.alerts(t);
        assert_eq!(alerts[SIG_SEARCH].level, AlertLevel::Critical);
        assert!(alerts[SIG_SEARCH].fast_burn >= 5.0);
        // Other signals untouched.
        assert_eq!(alerts[SIG_TTFT].level, AlertLevel::Ok);

        // A flood of good observations dilutes the burn back under warn.
        let mut recovered = None;
        for _ in 0..2000 {
            if let Some(tr) = plane.observe_slo(SIG_SEARCH, true, t) {
                recovered = Some(tr);
            }
        }
        let recovered = recovered.expect("recovery transition");
        assert_eq!(recovered.to, AlertLevel::Ok);
        assert!(plane.alerts_json(t).render().contains("\"level\":\"ok\""));
    }

    #[test]
    fn watchdog_fast_window_forgets_old_burn() {
        let config = TraceConfig {
            slo_target: 0.9,
            fast_window_s: 60.0,
            slow_window_s: 600.0,
            ..TraceConfig::default()
        };
        let plane = TracePlane::new(&config, 7);
        let early = SimTime::from_nanos(1_000_000_000);
        for _ in 0..100 {
            plane.observe_slo(SIG_TTFT, false, early);
        }
        // 100% bad: both windows burn at 10x the budget.
        let alerts = plane.alerts(early);
        assert_eq!(alerts[SIG_TTFT].level, AlertLevel::Critical);

        // 2 minutes later the fast window has rolled past the bad burst;
        // min(fast, slow) falls and one good observation recovers.
        let late = early + SimDuration::from_secs_f64(120.0);
        let transition = plane
            .observe_slo(SIG_TTFT, true, late)
            .expect("recovery transition");
        assert_eq!(transition.to, AlertLevel::Ok);
        assert!(transition.fast_burn < config.warn_burn);
    }

    #[test]
    fn disabled_plane_records_nothing() {
        let config = TraceConfig {
            enabled: false,
            ..TraceConfig::default()
        };
        let plane = TracePlane::new(&config, 3);
        assert!(!plane.enabled());
        assert!(plane.begin_batch(&[TraceId(1)]).is_none());
        plane.record_request(
            TraceId(1),
            None,
            RequestSpanTimes {
                enqueued_s: 0.0,
                search_start_s: 0.0,
                search_end_s: 0.0,
                end_s: 0.0,
            },
            None,
            None,
        );
        assert!(plane.trace_spans(1).is_none());
        assert_eq!(plane.observe_slo(SIG_SEARCH, false, SimTime::ZERO), None);
        let timer = plane.stage_start(STAGE_BATCHER, SimTime::ZERO);
        plane.stage_end(timer, SimTime::from_nanos(500));
        assert_eq!(plane.profile()[STAGE_BATCHER].sections, 0);
    }
}
