//! Open-loop load generation against a [`RagServer`].
//!
//! The generators submit on a wall-clock Poisson schedule regardless of
//! completions (open loop): under overload the admission queue fills and
//! requests are *rejected*, not silently delayed — the regime the paper's
//! SLO-attainment figures probe. [`RotatingQuerySource`] draws queries from
//! a corpus's topic mixture and can rotate the Zipf hot set mid-run, the
//! drift scenario of §IV-B3.
//!
//! Three drivers:
//! - [`run_open_loop`] — single-tenant (tenant 0), one Poisson rate;
//! - [`run_open_loop_tenants`] — multi-tenant: each tenant brings its own
//!   Zipf query source and a piecewise-constant rate schedule
//!   ([`LoadPhase`]), so one tenant can flood mid-run while another stays
//!   steady. Per-tenant arrival processes are independent Poisson streams
//!   merged on the wall clock.
//! - [`run_open_loop_http`] — the same multi-tenant schedule fired over a
//!   real TCP socket against an
//!   [`HttpFrontend`](crate::http::HttpFrontend), through a pool of
//!   persistent keep-alive connections.

use std::net::SocketAddr;
use std::time::Duration;

use crossbeam::channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vlite_ann::VecSet;
use vlite_sim::SimDuration;
use vlite_workload::{gaussian, SyntheticCorpus, ZipfSampler};

use crate::clock::{Clock, RealClock};
use crate::http::client::HttpClient;
use crate::http::wire;
use crate::request::{AdmissionError, SearchResponse, TenantId, Ticket};
use crate::server::RagServer;

/// Draws queries near a corpus's topic centers with Zipf-distributed topic
/// popularity, with a rotatable hot set.
#[derive(Debug, Clone)]
pub struct RotatingQuerySource {
    centers: VecSet,
    noise: f32,
    zipf: ZipfSampler,
    rotation: usize,
    rng: StdRng,
}

impl RotatingQuerySource {
    /// A source matching the corpus's own generation law (same Zipf
    /// exponent, query noise slightly wider than document noise, as in
    /// [`SyntheticCorpus::queries`]).
    pub fn from_corpus(corpus: &SyntheticCorpus, seed: u64) -> Self {
        let config = corpus.config();
        Self {
            centers: corpus.centers.clone(),
            noise: config.noise * 1.25,
            zipf: ZipfSampler::new(corpus.centers.len(), config.zipf_exponent),
            rotation: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x10ad_9e4e),
        }
    }

    /// Rotates the popularity ranking by `offset` topics: the workload's
    /// hot set moves while its shape stays identical.
    pub fn set_rotation(&mut self, offset: usize) {
        self.rotation = offset % self.centers.len();
    }

    /// The current rotation offset.
    pub fn rotation(&self) -> usize {
        self.rotation
    }

    /// Draws the next query.
    pub fn next_query(&mut self) -> Vec<f32> {
        let topic = (self.zipf.sample(&mut self.rng) + self.rotation) % self.centers.len();
        let center = self.centers.get(topic);
        center
            .iter()
            .map(|&c| c + gaussian(&mut self.rng) * self.noise)
            .collect()
    }
}

/// Outcome of one open-loop run.
#[derive(Debug)]
pub struct OpenLoopResult {
    /// Requests the generator attempted to submit.
    pub submitted: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Completed responses, in completion-collection order.
    pub responses: Vec<SearchResponse>,
    /// Wall-clock duration of the submission phase.
    pub offered_for: Duration,
    /// Wall-clock duration from first submission until the last admitted
    /// request completed (submission + queue drain) — the honest
    /// denominator for achieved throughput.
    pub served_for: Duration,
}

impl OpenLoopResult {
    /// Offered arrival rate actually achieved (submissions per second).
    pub fn offered_rate(&self) -> f64 {
        let secs = self.offered_for.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.submitted as f64 / secs
        }
    }

    /// Completions per second over the full run including the drain phase
    /// — at overload this is the service capacity, not the offered rate.
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.served_for.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.responses.len() as f64 / secs
        }
    }
}

/// Submits `n` requests at Poisson `rate` (requests/second) as tenant 0,
/// calling `before_submit(i, source)` ahead of each draw — the hook where
/// drift experiments rotate the hot set mid-run — then waits for all
/// admitted requests to complete.
///
/// # Panics
///
/// Panics if `rate` is not finite and positive or `n == 0`.
pub fn run_open_loop(
    server: &RagServer,
    source: &mut RotatingQuerySource,
    rate: f64,
    n: usize,
    seed: u64,
    before_submit: impl FnMut(usize, &mut RotatingQuerySource),
) -> OpenLoopResult {
    run_open_loop_deadline(server, source, rate, n, seed, None, before_submit)
}

/// [`run_open_loop`] with every request stamped with the same end-to-end
/// `deadline` budget (via
/// [`RagServer::submit_with_deadline`](crate::RagServer::submit_with_deadline)).
/// Under an enforcing [`DeadlinePolicy`](crate::DeadlinePolicy) requests
/// may be shed at admission (counted as rejections) or mid-pipeline (their
/// tickets resolve without a response), so `responses` holds only the
/// requests that were actually served.
///
/// # Panics
///
/// Panics if `rate` is not finite and positive or `n == 0`.
pub fn run_open_loop_deadline(
    server: &RagServer,
    source: &mut RotatingQuerySource,
    rate: f64,
    n: usize,
    seed: u64,
    deadline: Option<Duration>,
    mut before_submit: impl FnMut(usize, &mut RotatingQuerySource),
) -> OpenLoopResult {
    assert!(
        rate.is_finite() && rate > 0.0,
        "rate must be positive, got {rate}"
    );
    assert!(n > 0, "need at least one request");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x09e4_100b);
    // Pacing runs on the server's clock: wall time in production, and
    // non-blocking deterministic steps when the server was started on a
    // virtual clock.
    let clock = server.clock();
    let started = clock.now();
    let mut next_at = 0.0f64;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(n);
    let mut rejected = 0usize;

    for i in 0..n {
        before_submit(i, source);
        // Exponential inter-arrival gap; absolute targets keep the offered
        // rate honest even when sleep granularity is coarse.
        let u: f64 = rng.random();
        next_at += -(1.0 - u).ln() / rate;
        clock.sleep_until(started + SimDuration::from_secs_f64(next_at));
        match server.submit_with_deadline(TenantId(0), source.next_query(), deadline) {
            Ok(ticket) => tickets.push(ticket),
            Err(_) => rejected += 1,
        }
    }
    let offered_for = (clock.now() - started).to_std();

    let mut responses = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        if let Some(response) = ticket.wait() {
            responses.push(response);
        }
    }
    OpenLoopResult {
        submitted: n,
        rejected,
        responses,
        offered_for,
        served_for: (clock.now() - started).to_std(),
    }
}

/// One segment of a tenant's piecewise-constant offered load: `n` requests
/// at Poisson `rate` (requests/second).
#[derive(Debug, Clone, Copy)]
pub struct LoadPhase {
    /// Offered Poisson arrival rate in requests/second.
    pub rate: f64,
    /// Number of requests in this phase.
    pub n: usize,
}

/// One tenant's offered load for a multi-tenant open-loop run.
#[derive(Debug)]
pub struct TenantLoad {
    /// The tenant to submit as.
    pub tenant: TenantId,
    /// This tenant's query distribution.
    pub source: RotatingQuerySource,
    /// Phases played back to back; a mid-run flood is a phase with a much
    /// higher rate.
    pub phases: Vec<LoadPhase>,
}

/// One tenant's slice of a [`MultiTenantResult`].
#[derive(Debug)]
pub struct TenantLoopResult {
    /// The tenant this slice describes.
    pub tenant: TenantId,
    /// Requests this tenant attempted to submit.
    pub submitted: usize,
    /// Requests rejected against this tenant's quota.
    pub rejected: usize,
    /// Requests answered `504 Gateway Timeout` (HTTP driver only): the
    /// request's deadline budget was unmeetable or expired in flight.
    pub deadline_misses: usize,
    /// This tenant's completed responses, in submission order.
    pub responses: Vec<SearchResponse>,
}

/// Outcome of one multi-tenant open-loop run.
#[derive(Debug)]
pub struct MultiTenantResult {
    /// Per-tenant outcomes, in the order the loads were given.
    pub tenants: Vec<TenantLoopResult>,
    /// Wall-clock duration of the submission phase (all tenants).
    pub offered_for: Duration,
    /// Wall-clock duration until the last admitted request completed.
    pub served_for: Duration,
}

/// Drives several tenants' open-loop Poisson streams against one server.
///
/// Each tenant's arrival times are drawn independently from its phase
/// schedule, then every arrival is merged onto one wall clock and submitted
/// in timestamp order via [`RagServer::submit_for`]. Rejections charge the
/// submitting tenant only. After the last submission the driver waits for
/// every admitted request to complete.
///
/// # Panics
///
/// Panics if no load has any requests, or any phase rate is not finite and
/// positive.
pub fn run_open_loop_tenants(
    server: &RagServer,
    loads: &mut [TenantLoad],
    seed: u64,
) -> MultiTenantResult {
    let arrivals = merged_arrivals(loads, seed);

    let mut outcomes: Vec<TenantLoopResult> = loads
        .iter()
        .map(|load| TenantLoopResult {
            tenant: load.tenant,
            submitted: 0,
            rejected: 0,
            deadline_misses: 0,
            responses: Vec::new(),
        })
        .collect();
    let mut tickets: Vec<Vec<Ticket>> = loads.iter().map(|_| Vec::new()).collect();

    let clock = server.clock();
    let started = clock.now();
    for (at, li) in arrivals {
        clock.sleep_until(started + SimDuration::from_secs_f64(at));
        let load = &mut loads[li];
        let query = load.source.next_query();
        outcomes[li].submitted += 1;
        match server.submit_for(load.tenant, query) {
            Ok(ticket) => tickets[li].push(ticket),
            // Only quota rejections are part of the overload experiment;
            // anything else (unknown tenant, shutdown mid-run) is driver
            // misuse and must not masquerade as shedding.
            Err(AdmissionError::QueueFull { .. }) => outcomes[li].rejected += 1,
            Err(err) => panic!("open-loop submission failed: {err}"),
        }
    }
    let offered_for = (clock.now() - started).to_std();

    for (li, tenant_tickets) in tickets.into_iter().enumerate() {
        for ticket in tenant_tickets {
            if let Some(response) = ticket.wait() {
                outcomes[li].responses.push(response);
            }
        }
    }
    MultiTenantResult {
        tenants: outcomes,
        offered_for,
        served_for: (clock.now() - started).to_std(),
    }
}

/// Precomputes every tenant's Poisson arrival offsets (seconds from start)
/// and merges them into one timestamp-ordered schedule of `(at, load
/// index)` pairs.
///
/// # Panics
///
/// Panics if no load has any requests, or any phase rate is not finite and
/// positive.
fn merged_arrivals(loads: &[TenantLoad], seed: u64) -> Vec<(f64, usize)> {
    let mut arrivals: Vec<(f64, usize)> = Vec::new();
    for (li, load) in loads.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x7e2a_177e + load.tenant.0 as u64 * 0x9e37));
        let mut t = 0.0f64;
        for phase in &load.phases {
            assert!(
                phase.rate.is_finite() && phase.rate > 0.0,
                "rate must be positive, got {}",
                phase.rate
            );
            for _ in 0..phase.n {
                let u: f64 = rng.random();
                t += -(1.0 - u).ln() / phase.rate;
                arrivals.push((t, li));
            }
        }
    }
    assert!(!arrivals.is_empty(), "need at least one request");
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("arrival times are finite"));
    arrivals
}

/// One worker's report back to the collector.
enum HttpOutcome {
    /// `200 OK` with a decoded search response.
    Completed(SearchResponse),
    /// `429 Too Many Requests` — shed against the submitting tenant's
    /// quota, the same signal as an in-process `QueueFull`.
    Rejected,
    /// `504 Gateway Timeout` — the request's deadline budget was
    /// unmeetable at admission or expired in flight.
    DeadlineMiss,
}

/// Drives the multi-tenant open-loop schedule over a real TCP socket
/// against an [`HttpFrontend`](crate::http::HttpFrontend) at `addr`.
///
/// Arrivals follow the same merged Poisson schedule as
/// [`run_open_loop_tenants`]; each submission is handed to a pool of
/// `connections` worker threads, every one holding a persistent keep-alive
/// connection. A `429` counts as a rejection charged to the submitting
/// tenant; any other non-`200` status is driver misuse and panics. The
/// per-request timings inside each returned [`SearchResponse`] are the
/// *server's* measurements, decoded from the response body, so they are
/// directly comparable with an in-process run.
///
/// Since `POST /v1/search` blocks until the result is merged, `connections`
/// bounds the number of in-flight requests: size it above the offered rate
/// times the expected latency, or submissions lag the open-loop schedule.
/// Per-tenant responses arrive in completion order, not submission order.
///
/// # Panics
///
/// Panics on an empty schedule, `connections == 0`, connect failures, or a
/// status other than `200`/`429`/`504`.
pub fn run_open_loop_http(
    addr: SocketAddr,
    loads: &mut [TenantLoad],
    seed: u64,
    connections: usize,
) -> MultiTenantResult {
    assert!(connections > 0, "need at least one connection");
    let arrivals = merged_arrivals(loads, seed);

    // vlite-allow(bounded-queues): the generator enqueues one job per
    // scripted arrival; the schedule is finite and precomputed.
    let (job_tx, job_rx) = channel::unbounded::<(usize, TenantId, Vec<f32>)>();
    // vlite-allow(bounded-queues): exactly one outcome per scripted job.
    let (result_tx, result_rx) = channel::unbounded::<(usize, HttpOutcome)>();
    let workers: Vec<std::thread::JoinHandle<()>> = (0..connections)
        .map(|w| {
            let rx = job_rx.clone();
            let tx = result_tx.clone();
            std::thread::Builder::new()
                .name(format!("vlite-loadgen-{w}"))
                .spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("loadgen connects");
                    while let Ok((li, tenant, query)) = rx.recv() {
                        let body = wire::search_request_to_json(&query).render();
                        let tenant_header = tenant.0.to_string();
                        let response = client
                            .post_json("/v1/search", &[("X-Tenant", &tenant_header)], &body)
                            .expect("search exchange succeeds");
                        let outcome = match response.status {
                            200 => {
                                let json = response.json().expect("response body is JSON");
                                HttpOutcome::Completed(
                                    wire::search_response_from_json(&json)
                                        .expect("response decodes"),
                                )
                            }
                            429 => HttpOutcome::Rejected,
                            504 => HttpOutcome::DeadlineMiss,
                            status => panic!("unexpected status {status} from /v1/search"),
                        };
                        if tx.send((li, outcome)).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawn loadgen worker")
        })
        .collect();
    drop(job_rx);
    drop(result_tx);

    let mut outcomes: Vec<TenantLoopResult> = loads
        .iter()
        .map(|load| TenantLoopResult {
            tenant: load.tenant,
            submitted: 0,
            rejected: 0,
            deadline_misses: 0,
            responses: Vec::new(),
        })
        .collect();

    // The HTTP driver paces against a remote server over real sockets, so
    // its schedule always runs on the wall clock (through the same Clock
    // interface as the in-process drivers).
    let clock = RealClock::new();
    let started = clock.now();
    for (at, li) in arrivals {
        clock.sleep_until(started + SimDuration::from_secs_f64(at));
        let load = &mut loads[li];
        let query = load.source.next_query();
        outcomes[li].submitted += 1;
        job_tx
            .send((li, load.tenant, query))
            .expect("worker pool alive");
    }
    let offered_for = (clock.now() - started).to_std();

    drop(job_tx); // workers drain the backlog, then exit
    for worker in workers {
        worker.join().expect("loadgen worker panicked");
    }
    while let Ok((li, outcome)) = result_rx.try_recv() {
        match outcome {
            HttpOutcome::Completed(response) => outcomes[li].responses.push(response),
            HttpOutcome::Rejected => outcomes[li].rejected += 1,
            HttpOutcome::DeadlineMiss => outcomes[li].deadline_misses += 1,
        }
    }
    MultiTenantResult {
        tenants: outcomes,
        offered_for,
        served_for: (clock.now() - started).to_std(),
    }
}
