//! Open-loop load generation against a [`RagServer`].
//!
//! The generator submits on a wall-clock Poisson schedule regardless of
//! completions (open loop): under overload the admission queue fills and
//! requests are *rejected*, not silently delayed — the regime the paper's
//! SLO-attainment figures probe. [`RotatingQuerySource`] draws queries from
//! a corpus's topic mixture and can rotate the Zipf hot set mid-run, the
//! drift scenario of §IV-B3.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vlite_ann::VecSet;
use vlite_workload::{gaussian, SyntheticCorpus, ZipfSampler};

use crate::request::{SearchResponse, Ticket};
use crate::server::RagServer;

/// Draws queries near a corpus's topic centers with Zipf-distributed topic
/// popularity, with a rotatable hot set.
#[derive(Debug, Clone)]
pub struct RotatingQuerySource {
    centers: VecSet,
    noise: f32,
    zipf: ZipfSampler,
    rotation: usize,
    rng: StdRng,
}

impl RotatingQuerySource {
    /// A source matching the corpus's own generation law (same Zipf
    /// exponent, query noise slightly wider than document noise, as in
    /// [`SyntheticCorpus::queries`]).
    pub fn from_corpus(corpus: &SyntheticCorpus, seed: u64) -> Self {
        let config = corpus.config();
        Self {
            centers: corpus.centers.clone(),
            noise: config.noise * 1.25,
            zipf: ZipfSampler::new(corpus.centers.len(), config.zipf_exponent),
            rotation: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x10ad_9e4e),
        }
    }

    /// Rotates the popularity ranking by `offset` topics: the workload's
    /// hot set moves while its shape stays identical.
    pub fn set_rotation(&mut self, offset: usize) {
        self.rotation = offset % self.centers.len();
    }

    /// The current rotation offset.
    pub fn rotation(&self) -> usize {
        self.rotation
    }

    /// Draws the next query.
    pub fn next_query(&mut self) -> Vec<f32> {
        let topic = (self.zipf.sample(&mut self.rng) + self.rotation) % self.centers.len();
        let center = self.centers.get(topic);
        center
            .iter()
            .map(|&c| c + gaussian(&mut self.rng) * self.noise)
            .collect()
    }
}

/// Outcome of one open-loop run.
#[derive(Debug)]
pub struct OpenLoopResult {
    /// Requests the generator attempted to submit.
    pub submitted: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Completed responses, in completion-collection order.
    pub responses: Vec<SearchResponse>,
    /// Wall-clock duration of the submission phase.
    pub offered_for: Duration,
    /// Wall-clock duration from first submission until the last admitted
    /// request completed (submission + queue drain) — the honest
    /// denominator for achieved throughput.
    pub served_for: Duration,
}

impl OpenLoopResult {
    /// Offered arrival rate actually achieved (submissions per second).
    pub fn offered_rate(&self) -> f64 {
        let secs = self.offered_for.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.submitted as f64 / secs
        }
    }

    /// Completions per second over the full run including the drain phase
    /// — at overload this is the service capacity, not the offered rate.
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.served_for.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.responses.len() as f64 / secs
        }
    }
}

/// Submits `n` requests at Poisson `rate` (requests/second), calling
/// `before_submit(i, source)` ahead of each draw — the hook where drift
/// experiments rotate the hot set mid-run — then waits for all admitted
/// requests to complete.
///
/// # Panics
///
/// Panics if `rate` is not finite and positive or `n == 0`.
pub fn run_open_loop(
    server: &RagServer,
    source: &mut RotatingQuerySource,
    rate: f64,
    n: usize,
    seed: u64,
    mut before_submit: impl FnMut(usize, &mut RotatingQuerySource),
) -> OpenLoopResult {
    assert!(
        rate.is_finite() && rate > 0.0,
        "rate must be positive, got {rate}"
    );
    assert!(n > 0, "need at least one request");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x09e4_100b);
    let started = Instant::now();
    let mut next_at = 0.0f64;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(n);
    let mut rejected = 0usize;

    for i in 0..n {
        before_submit(i, source);
        // Exponential inter-arrival gap; absolute targets keep the offered
        // rate honest even when sleep granularity is coarse.
        let u: f64 = rng.random();
        next_at += -(1.0 - u).ln() / rate;
        let target = started + Duration::from_secs_f64(next_at);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        match server.submit(source.next_query()) {
            Ok(ticket) => tickets.push(ticket),
            Err(_) => rejected += 1,
        }
    }
    let offered_for = started.elapsed();

    let mut responses = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        if let Some(response) = ticket.wait() {
            responses.push(response);
        }
    }
    OpenLoopResult {
        submitted: n,
        rejected,
        responses,
        offered_for,
        served_for: started.elapsed(),
    }
}
