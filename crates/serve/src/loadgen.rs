//! Open-loop load generation against a [`RagServer`].
//!
//! The generators submit on a wall-clock Poisson schedule regardless of
//! completions (open loop): under overload the admission queue fills and
//! requests are *rejected*, not silently delayed — the regime the paper's
//! SLO-attainment figures probe. [`RotatingQuerySource`] draws queries from
//! a corpus's topic mixture and can rotate the Zipf hot set mid-run, the
//! drift scenario of §IV-B3.
//!
//! Two drivers:
//! - [`run_open_loop`] — single-tenant (tenant 0), one Poisson rate;
//! - [`run_open_loop_tenants`] — multi-tenant: each tenant brings its own
//!   Zipf query source and a piecewise-constant rate schedule
//!   ([`LoadPhase`]), so one tenant can flood mid-run while another stays
//!   steady. Per-tenant arrival processes are independent Poisson streams
//!   merged on the wall clock.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vlite_ann::VecSet;
use vlite_workload::{gaussian, SyntheticCorpus, ZipfSampler};

use crate::request::{AdmissionError, SearchResponse, TenantId, Ticket};
use crate::server::RagServer;

/// Draws queries near a corpus's topic centers with Zipf-distributed topic
/// popularity, with a rotatable hot set.
#[derive(Debug, Clone)]
pub struct RotatingQuerySource {
    centers: VecSet,
    noise: f32,
    zipf: ZipfSampler,
    rotation: usize,
    rng: StdRng,
}

impl RotatingQuerySource {
    /// A source matching the corpus's own generation law (same Zipf
    /// exponent, query noise slightly wider than document noise, as in
    /// [`SyntheticCorpus::queries`]).
    pub fn from_corpus(corpus: &SyntheticCorpus, seed: u64) -> Self {
        let config = corpus.config();
        Self {
            centers: corpus.centers.clone(),
            noise: config.noise * 1.25,
            zipf: ZipfSampler::new(corpus.centers.len(), config.zipf_exponent),
            rotation: 0,
            rng: StdRng::seed_from_u64(seed ^ 0x10ad_9e4e),
        }
    }

    /// Rotates the popularity ranking by `offset` topics: the workload's
    /// hot set moves while its shape stays identical.
    pub fn set_rotation(&mut self, offset: usize) {
        self.rotation = offset % self.centers.len();
    }

    /// The current rotation offset.
    pub fn rotation(&self) -> usize {
        self.rotation
    }

    /// Draws the next query.
    pub fn next_query(&mut self) -> Vec<f32> {
        let topic = (self.zipf.sample(&mut self.rng) + self.rotation) % self.centers.len();
        let center = self.centers.get(topic);
        center
            .iter()
            .map(|&c| c + gaussian(&mut self.rng) * self.noise)
            .collect()
    }
}

/// Outcome of one open-loop run.
#[derive(Debug)]
pub struct OpenLoopResult {
    /// Requests the generator attempted to submit.
    pub submitted: usize,
    /// Requests rejected by admission control.
    pub rejected: usize,
    /// Completed responses, in completion-collection order.
    pub responses: Vec<SearchResponse>,
    /// Wall-clock duration of the submission phase.
    pub offered_for: Duration,
    /// Wall-clock duration from first submission until the last admitted
    /// request completed (submission + queue drain) — the honest
    /// denominator for achieved throughput.
    pub served_for: Duration,
}

impl OpenLoopResult {
    /// Offered arrival rate actually achieved (submissions per second).
    pub fn offered_rate(&self) -> f64 {
        let secs = self.offered_for.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.submitted as f64 / secs
        }
    }

    /// Completions per second over the full run including the drain phase
    /// — at overload this is the service capacity, not the offered rate.
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.served_for.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.responses.len() as f64 / secs
        }
    }
}

/// Submits `n` requests at Poisson `rate` (requests/second) as tenant 0,
/// calling `before_submit(i, source)` ahead of each draw — the hook where
/// drift experiments rotate the hot set mid-run — then waits for all
/// admitted requests to complete.
///
/// # Panics
///
/// Panics if `rate` is not finite and positive or `n == 0`.
pub fn run_open_loop(
    server: &RagServer,
    source: &mut RotatingQuerySource,
    rate: f64,
    n: usize,
    seed: u64,
    mut before_submit: impl FnMut(usize, &mut RotatingQuerySource),
) -> OpenLoopResult {
    assert!(
        rate.is_finite() && rate > 0.0,
        "rate must be positive, got {rate}"
    );
    assert!(n > 0, "need at least one request");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x09e4_100b);
    let started = Instant::now();
    let mut next_at = 0.0f64;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(n);
    let mut rejected = 0usize;

    for i in 0..n {
        before_submit(i, source);
        // Exponential inter-arrival gap; absolute targets keep the offered
        // rate honest even when sleep granularity is coarse.
        let u: f64 = rng.random();
        next_at += -(1.0 - u).ln() / rate;
        let target = started + Duration::from_secs_f64(next_at);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        match server.submit(source.next_query()) {
            Ok(ticket) => tickets.push(ticket),
            Err(_) => rejected += 1,
        }
    }
    let offered_for = started.elapsed();

    let mut responses = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        if let Some(response) = ticket.wait() {
            responses.push(response);
        }
    }
    OpenLoopResult {
        submitted: n,
        rejected,
        responses,
        offered_for,
        served_for: started.elapsed(),
    }
}

/// One segment of a tenant's piecewise-constant offered load: `n` requests
/// at Poisson `rate` (requests/second).
#[derive(Debug, Clone, Copy)]
pub struct LoadPhase {
    /// Offered Poisson arrival rate in requests/second.
    pub rate: f64,
    /// Number of requests in this phase.
    pub n: usize,
}

/// One tenant's offered load for a multi-tenant open-loop run.
#[derive(Debug)]
pub struct TenantLoad {
    /// The tenant to submit as.
    pub tenant: TenantId,
    /// This tenant's query distribution.
    pub source: RotatingQuerySource,
    /// Phases played back to back; a mid-run flood is a phase with a much
    /// higher rate.
    pub phases: Vec<LoadPhase>,
}

/// One tenant's slice of a [`MultiTenantResult`].
#[derive(Debug)]
pub struct TenantLoopResult {
    /// The tenant this slice describes.
    pub tenant: TenantId,
    /// Requests this tenant attempted to submit.
    pub submitted: usize,
    /// Requests rejected against this tenant's quota.
    pub rejected: usize,
    /// This tenant's completed responses, in submission order.
    pub responses: Vec<SearchResponse>,
}

/// Outcome of one multi-tenant open-loop run.
#[derive(Debug)]
pub struct MultiTenantResult {
    /// Per-tenant outcomes, in the order the loads were given.
    pub tenants: Vec<TenantLoopResult>,
    /// Wall-clock duration of the submission phase (all tenants).
    pub offered_for: Duration,
    /// Wall-clock duration until the last admitted request completed.
    pub served_for: Duration,
}

/// Drives several tenants' open-loop Poisson streams against one server.
///
/// Each tenant's arrival times are drawn independently from its phase
/// schedule, then every arrival is merged onto one wall clock and submitted
/// in timestamp order via [`RagServer::submit_for`]. Rejections charge the
/// submitting tenant only. After the last submission the driver waits for
/// every admitted request to complete.
///
/// # Panics
///
/// Panics if no load has any requests, or any phase rate is not finite and
/// positive.
pub fn run_open_loop_tenants(
    server: &RagServer,
    loads: &mut [TenantLoad],
    seed: u64,
) -> MultiTenantResult {
    // Precompute per-tenant Poisson arrival offsets (seconds from start).
    let mut arrivals: Vec<(f64, usize)> = Vec::new();
    for (li, load) in loads.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ (0x7e2a_177e + load.tenant.0 as u64 * 0x9e37));
        let mut t = 0.0f64;
        for phase in &load.phases {
            assert!(
                phase.rate.is_finite() && phase.rate > 0.0,
                "rate must be positive, got {}",
                phase.rate
            );
            for _ in 0..phase.n {
                let u: f64 = rng.random();
                t += -(1.0 - u).ln() / phase.rate;
                arrivals.push((t, li));
            }
        }
    }
    assert!(!arrivals.is_empty(), "need at least one request");
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("arrival times are finite"));

    let mut outcomes: Vec<TenantLoopResult> = loads
        .iter()
        .map(|load| TenantLoopResult {
            tenant: load.tenant,
            submitted: 0,
            rejected: 0,
            responses: Vec::new(),
        })
        .collect();
    let mut tickets: Vec<Vec<Ticket>> = loads.iter().map(|_| Vec::new()).collect();

    let started = Instant::now();
    for (at, li) in arrivals {
        let target = started + Duration::from_secs_f64(at);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let load = &mut loads[li];
        let query = load.source.next_query();
        outcomes[li].submitted += 1;
        match server.submit_for(load.tenant, query) {
            Ok(ticket) => tickets[li].push(ticket),
            // Only quota rejections are part of the overload experiment;
            // anything else (unknown tenant, shutdown mid-run) is driver
            // misuse and must not masquerade as shedding.
            Err(AdmissionError::QueueFull { .. }) => outcomes[li].rejected += 1,
            Err(err) => panic!("open-loop submission failed: {err}"),
        }
    }
    let offered_for = started.elapsed();

    for (li, tenant_tickets) in tickets.into_iter().enumerate() {
        for ticket in tenant_tickets {
            if let Some(response) = ticket.wait() {
                outcomes[li].responses.push(response);
            }
        }
    }
    MultiTenantResult {
        tenants: outcomes,
        offered_for,
        served_for: started.elapsed(),
    }
}
