//! A minimal blocking HTTP/1.1 client over one keep-alive connection.
//!
//! Exists so the load generator, the smoke bench and the integration tests
//! can drive the frontend over a real socket without external tooling. One
//! [`HttpClient`] owns one `TcpStream` and reuses it across requests
//! (keep-alive); response framing is `Content-Length` only, matching what
//! the frontend emits.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use crate::http::json::{Json, JsonError};

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code (200, 429, …).
    pub status: u16,
    /// Response headers, in wire order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// [`JsonError`] if the body is not valid UTF-8 JSON.
    pub fn json(&self) -> Result<Json, JsonError> {
        let text = std::str::from_utf8(&self.body).map_err(|_| JsonError {
            at: 0,
            what: "valid UTF-8",
        })?;
        Json::parse(text)
    }
}

/// A blocking HTTP/1.1 client bound to one keep-alive connection.
#[derive(Debug)]
pub struct HttpClient {
    stream: TcpStream,
    /// Bytes read past the previous response (keep-alive leftovers).
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects to the frontend at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issues a `GET` and reads the full response.
    ///
    /// # Errors
    ///
    /// I/O failures or a response the client cannot frame.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, &[], b"")
    }

    /// Issues a `POST` with a JSON body and extra headers.
    ///
    /// # Errors
    ///
    /// I/O failures or a response the client cannot frame.
    pub fn post_json(
        &mut self,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<HttpResponse> {
        self.request("POST", path, extra_headers, body.as_bytes())
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<HttpResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: vlite-serve\r\n");
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let malformed =
            || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
        let mut chunk = [0u8; 8192];
        // Head: read until \r\n\r\n.
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..head_end].to_vec()).map_err(|_| malformed())?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(malformed)?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse().ok())
            .ok_or_else(malformed)?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines {
            let (name, value) = line.split_once(':').ok_or_else(malformed)?;
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| malformed())?;
            }
            headers.push((name, value));
        }

        // Body: Content-Length bytes past the head.
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        // Keep any pipelined leftovers for the next exchange.
        self.buf.drain(..body_start + content_length);
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
