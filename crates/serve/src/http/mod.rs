//! The hand-rolled HTTP/1.1 network frontend (no external dependencies —
//! `std::net` only, per the no-new-deps constraint).
//!
//! Layered bottom-up:
//!
//! - [`parser`] — incremental, zero-copy request parsing (request line,
//!   headers, `Content-Length` framing, keep-alive semantics);
//! - [`json`] — a small JSON value tree with a hardened parser and a
//!   compact renderer (the offline `serde` shim's derives are no-ops, so
//!   the wire format is hand-rolled here);
//! - [`wire`] — explicit JSON mappings for the API's request/response
//!   types, round-trip tested;
//! - [`server`] — the [`HttpFrontend`]: a thread-per-connection acceptor
//!   mapping `POST /v1/search`, `GET /v1/report`, `GET /v1/tenants` and
//!   `GET /healthz` onto a running [`RagServer`](crate::RagServer);
//! - [`client`] — a minimal blocking keep-alive client for load
//!   generation, benches and tests.

pub mod client;
pub mod json;
pub mod parser;
pub mod server;
pub mod wire;

pub use client::{HttpClient, HttpResponse};
pub use server::HttpFrontend;
