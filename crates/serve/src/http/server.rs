//! The network frontend: a thread-per-connection HTTP/1.1 acceptor mapping
//! the API onto a [`RagServer`].
//!
//! | Endpoint | Maps to |
//! |---|---|
//! | `POST /v1/search` (+ `X-Tenant`, `traceparent`) | [`RagServer::submit_with_trace`], blocks on the [`Ticket`](crate::Ticket), streams the merged result back with a `traceparent` response header |
//! | `GET /v1/report` | [`RagServer::report`] as JSON |
//! | `GET /v1/metrics` | [`RagServer::prometheus_text`] + frontend uptime, as Prometheus text exposition |
//! | `GET /v1/traces` | the recent + slow request-trace rings as JSON |
//! | `GET /v1/trace/{id}` | one trace's causal span tree (`?format=chrome` for a `chrome://tracing` export) |
//! | `GET /v1/profile` | per-stage wall vs CPU profile + collapsed sampler stacks |
//! | `GET /v1/alerts` | SLO burn-rate watchdog states per signal |
//! | `GET /v1/events` | the unified event journal as JSON (`?severity=` to filter) |
//! | `GET /v1/tenants` | the tenant table |
//! | `GET /healthz` | liveness + version + queue depth + placement generation + completed count |
//!
//! Connections are persistent (HTTP/1.1 keep-alive, pipelining included);
//! each runs on its own thread with a short read timeout so it can observe
//! shutdown. [`HttpFrontend::shutdown`] stops the acceptor, lets in-flight
//! requests finish (their tickets are served by the still-running batcher),
//! closes idle connections, then gracefully quiesces the runtime itself and
//! returns the final [`ServeReport`]. Dropping the frontend without calling
//! `shutdown` performs the same teardown.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use vlite_sim::SimTime;

use crate::config::HttpConfig;
use crate::http::json::Json;
use crate::http::parser::{self, ParseError, RequestHead};
use crate::http::wire;
use crate::obs::Severity;
use crate::report::ServeReport;
use crate::request::{AdmissionError, TenantId, Ticket};
use crate::server::RagServer;
use crate::trace::{format_traceparent, parse_traceparent, STAGE_ACCEPTOR};

/// How often a blocked connection read re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Upper bound on writing one response to a stalled client.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// State shared between the acceptor and every connection thread.
struct FrontendInner {
    server: RagServer,
    config: HttpConfig,
    shutting_down: AtomicBool,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// The runtime clock's reading at bind time; uptime is measured on
    /// the same `Clock` as every other timestamp, so VirtualClock tests
    /// see a deterministic uptime too.
    started: SimTime,
}

impl FrontendInner {
    fn uptime_seconds(&self) -> f64 {
        (self.server.clock().now() - self.started).as_secs_f64()
    }
}

/// The HTTP/1.1 frontend. Owns the [`RagServer`] and the acceptor thread.
pub struct HttpFrontend {
    inner: Option<Arc<FrontendInner>>,
    acceptor: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl std::fmt::Debug for HttpFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpFrontend")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl HttpFrontend {
    /// Binds `config.addr` and starts accepting connections against an
    /// already-running `server`. Use port `0` to let the OS pick (read the
    /// result back from [`HttpFrontend::addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(server: RagServer, config: &HttpConfig) -> std::io::Result<HttpFrontend> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let started = server.clock().now();
        let inner = Arc::new(FrontendInner {
            server,
            config: config.clone(),
            shutting_down: AtomicBool::new(false),
            conn_threads: Mutex::new(Vec::new()),
            started,
        });
        let acceptor = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("vlite-http-accept".into())
                .spawn(move || acceptor(&listener, &inner))
                .expect("spawn http acceptor")
        };
        Ok(HttpFrontend {
            inner: Some(inner),
            acceptor: Some(acceptor),
            addr,
        })
    }

    /// The address the frontend actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving runtime behind the frontend (for in-process submissions
    /// and report snapshots alongside network traffic).
    pub fn server(&self) -> &RagServer {
        &self.inner.as_ref().expect("frontend is running").server
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests, close
    /// idle connections, quiesce the runtime, return the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.quiesce();
        let inner = self.inner.take().expect("shutdown runs once");
        let inner = Arc::try_unwrap(inner)
            .map_err(|_| ())
            .expect("all connection threads joined");
        inner.server.shutdown()
    }

    /// Stops the acceptor and joins every connection thread. In-flight
    /// requests complete first: their tickets are served by the runtime,
    /// which is still fully up until [`HttpFrontend::shutdown`] quiesces it.
    fn quiesce(&mut self) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        inner.shutting_down.store(true, Ordering::SeqCst);
        // The acceptor is blocked in `accept`; poke it awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles = std::mem::take(&mut *crate::sync::lock_recover(&inner.conn_threads));
        for handle in handles {
            if handle.join().is_err() {
                inner.server.record_connection_panic();
            }
        }
    }
}

impl Drop for HttpFrontend {
    fn drop(&mut self) {
        // Same quiesce path as `shutdown`; the runtime then tears down
        // gracefully through `RagServer`'s own `Drop`.
        self.quiesce();
        self.inner.take();
    }
}

fn acceptor(listener: &TcpListener, inner: &Arc<FrontendInner>) {
    inner.server.trace_plane().register_worker(STAGE_ACCEPTOR);
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return; // the shutdown poke (or a late client)
                }
                let conn_inner = inner.clone();
                let spawned = std::thread::Builder::new()
                    .name("vlite-http-conn".into())
                    .spawn(move || connection(&conn_inner, stream));
                if let Ok(handle) = spawned {
                    let mut threads = crate::sync::lock_recover(&inner.conn_threads);
                    // Reap finished connections so a long-lived frontend
                    // under churn doesn't accumulate dead handles — and
                    // actually join them: a bare `retain(!is_finished)`
                    // discards the JoinHandle, which silently swallows any
                    // connection-thread panic.
                    let mut live = Vec::with_capacity(threads.len() + 1);
                    for h in threads.drain(..) {
                        if h.is_finished() {
                            if h.join().is_err() {
                                inner.server.record_connection_panic();
                            }
                        } else {
                            live.push(h);
                        }
                    }
                    *threads = live;
                    threads.push(handle);
                }
            }
            Err(_) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// What the connection loop should do after one service attempt.
enum Step {
    /// The buffer holds no complete request yet.
    NeedMore,
    /// One request was answered; the connection stays open.
    Served,
    /// The connection must close (protocol error or `Connection: close`).
    Close,
}

fn connection(inner: &FrontendInner, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut continue_sent = false;
    loop {
        // Serve every complete pipelined request already buffered.
        loop {
            match try_serve_one(inner, &mut buf, &mut stream, &mut continue_sent) {
                Ok(Step::NeedMore) => break,
                Ok(Step::Served) => {}
                Ok(Step::Close) | Err(_) => return,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return; // idle (or mid-request) connection at shutdown
                }
            }
            Err(_) => return,
        }
    }
}

/// Parses and answers at most one request from the front of `buf`.
fn try_serve_one(
    inner: &FrontendInner,
    buf: &mut Vec<u8>,
    stream: &mut TcpStream,
    continue_sent: &mut bool,
) -> std::io::Result<Step> {
    let (response, consumed, keep) = match parser::parse_head(buf) {
        Ok(None) => return Ok(Step::NeedMore),
        Err(err) => {
            // Framing is unrecoverable after a parse error: answer and close.
            let status = match err {
                ParseError::HeadTooLarge => (431, "Request Header Fields Too Large"),
                ParseError::UnsupportedVersion => (505, "HTTP Version Not Supported"),
                _ => (400, "Bad Request"),
            };
            let response = encode_response(
                status,
                &wire::error_body(&err.to_string()),
                &[],
                JSON_CT,
                false,
            );
            stream.write_all(&response)?;
            return Ok(Step::Close);
        }
        Ok(Some((head, head_len))) => {
            if head.is_chunked() {
                let response = encode_response(
                    (411, "Length Required"),
                    &wire::error_body("chunked transfer encoding is not supported"),
                    &[],
                    JSON_CT,
                    false,
                );
                stream.write_all(&response)?;
                return Ok(Step::Close);
            }
            let body_len = match head.content_length() {
                Ok(n) => n,
                Err(err) => {
                    let response = encode_response(
                        (400, "Bad Request"),
                        &wire::error_body(&err.to_string()),
                        &[],
                        JSON_CT,
                        false,
                    );
                    stream.write_all(&response)?;
                    return Ok(Step::Close);
                }
            };
            if body_len > inner.config.max_body {
                // Reject before buffering the body; the unread bytes make
                // the framing unusable, so the connection closes.
                let response = encode_response(
                    (413, "Payload Too Large"),
                    &wire::error_body(&format!(
                        "body of {body_len} bytes exceeds the {}-byte limit",
                        inner.config.max_body
                    )),
                    &[],
                    JSON_CT,
                    false,
                );
                stream.write_all(&response)?;
                return Ok(Step::Close);
            }
            if buf.len() < head_len + body_len {
                if head.expects_continue() && !*continue_sent {
                    *continue_sent = true;
                    stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
                }
                return Ok(Step::NeedMore);
            }
            let body = &buf[head_len..head_len + body_len];
            let keep = head.keep_alive()
                && inner.config.keep_alive
                && !inner.shutting_down.load(Ordering::SeqCst);
            let reply = route(inner, &head, body);
            (
                encode_response(
                    reply.status,
                    &reply.body,
                    &reply.headers,
                    reply.content_type,
                    keep,
                ),
                head_len + body_len,
                keep,
            )
        }
    };
    stream.write_all(&response)?;
    buf.drain(..consumed);
    *continue_sent = false;
    Ok(if keep { Step::Served } else { Step::Close })
}

/// One routed response: status, body, extra headers, content type.
struct Reply {
    status: (u16, &'static str),
    body: String,
    headers: Vec<(String, String)>,
    content_type: &'static str,
}

const JSON_CT: &str = "application/json";
/// Prometheus text exposition format version 0.0.4.
const PROM_CT: &str = "text/plain; version=0.0.4; charset=utf-8";

impl Reply {
    /// A JSON reply with no extra headers (the common case).
    fn json(status: (u16, &'static str), body: String) -> Reply {
        Reply {
            status,
            body,
            headers: Vec::new(),
            content_type: JSON_CT,
        }
    }
}

const OK: (u16, &str) = (200, "OK");

fn bad_request(message: &str) -> Reply {
    Reply::json((400, "Bad Request"), wire::error_body(message))
}

fn route(inner: &FrontendInner, head: &RequestHead<'_>, body: &[u8]) -> Reply {
    if inner.shutting_down.load(Ordering::SeqCst) {
        return Reply::json(
            (503, "Service Unavailable"),
            wire::error_body("server is shutting down"),
        );
    }
    match (head.method, head.path()) {
        ("GET", "/healthz") => Reply::json(OK, healthz(inner).render()),
        ("GET", "/v1/report") => Reply::json(OK, inner.server.report().to_json().render()),
        ("GET", "/v1/metrics") => Reply {
            status: OK,
            body: metrics_text(inner),
            headers: Vec::new(),
            content_type: PROM_CT,
        },
        ("GET", "/v1/traces") => Reply::json(OK, inner.server.obs().traces_json().render()),
        ("GET", "/v1/events") => events(inner, head),
        ("GET", "/v1/profile") => {
            Reply::json(OK, inner.server.trace_plane().profile_json().render())
        }
        ("GET", "/v1/alerts") => {
            let now = inner.server.clock().now();
            Reply::json(OK, inner.server.trace_plane().alerts_json(now).render())
        }
        ("GET", "/v1/tenants") => {
            Reply::json(OK, wire::tenants_to_json(inner.server.tenants()).render())
        }
        ("GET", path) if path.starts_with("/v1/trace/") => trace_lookup(inner, head, path),
        ("POST", "/v1/search") => search(inner, head, body),
        (
            _,
            "/healthz" | "/v1/report" | "/v1/metrics" | "/v1/traces" | "/v1/events" | "/v1/tenants"
            | "/v1/profile" | "/v1/alerts",
        ) => method_not_allowed("GET"),
        (_, path) if path.starts_with("/v1/trace/") => method_not_allowed("GET"),
        (_, "/v1/search") => method_not_allowed("POST"),
        _ => Reply::json((404, "Not Found"), wire::error_body("no such endpoint")),
    }
}

/// The value of one `?key=value` query parameter on the request target.
fn query_param<'a>(head: &RequestHead<'a>, key: &str) -> Option<&'a str> {
    let (_, query) = head.target.split_once('?')?;
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// `GET /v1/events[?severity=info|warn|critical]`.
fn events(inner: &FrontendInner, head: &RequestHead<'_>) -> Reply {
    let severity = match query_param(head, "severity") {
        None => None,
        Some(raw) => match Severity::parse(raw) {
            Some(level) => Some(level),
            None => return bad_request("severity must be info, warn, or critical"),
        },
    };
    Reply::json(
        OK,
        inner.server.obs().events_json_filtered(severity).render(),
    )
}

/// `GET /v1/trace/{id}`: the causal span tree for one 32-hex trace id,
/// either as the span-tree document or (with `?format=chrome`) as a Chrome
/// `trace_event` array loadable in `chrome://tracing` / Perfetto.
fn trace_lookup(inner: &FrontendInner, head: &RequestHead<'_>, path: &str) -> Reply {
    let raw = &path["/v1/trace/".len()..];
    let Some(id) = vlite_metrics::spans::parse_trace_id(raw) else {
        return bad_request("trace id must be 32 hex digits");
    };
    let trace = inner.server.trace_plane();
    let doc = match query_param(head, "format") {
        None | Some("tree") => trace.trace_json(id),
        Some("chrome") => trace.chrome_json(id),
        Some(other) => return bad_request(&format!("unknown trace format: {other}")),
    };
    match doc {
        Some(json) => Reply::json(OK, json.render()),
        None => Reply::json(
            (404, "Not Found"),
            wire::error_body("no such trace (unknown id, or evicted from the ring)"),
        ),
    }
}

fn method_not_allowed(allow: &str) -> Reply {
    Reply {
        status: (405, "Method Not Allowed"),
        body: wire::error_body(&format!("only {allow} is supported here")),
        headers: vec![("Allow".into(), allow.into())],
        content_type: JSON_CT,
    }
}

/// The Prometheus exposition: the runtime's families plus the frontend's
/// own uptime gauge.
fn metrics_text(inner: &FrontendInner) -> String {
    let mut out = inner.server.prometheus_text();
    crate::obs::prom_gauge(
        &mut out,
        "vlite_uptime_seconds",
        "Seconds since the HTTP frontend started",
        inner.uptime_seconds(),
    );
    out
}

fn healthz(inner: &FrontendInner) -> Json {
    Json::Obj(vec![
        ("status".into(), Json::Str("ok".into())),
        (
            "version".into(),
            Json::Str(env!("CARGO_PKG_VERSION").into()),
        ),
        ("uptime_s".into(), Json::Num(inner.uptime_seconds())),
        (
            "generation".into(),
            Json::Num(inner.server.placement_generation() as f64),
        ),
        (
            "queue_depth".into(),
            Json::Num(inner.server.queue_depth() as f64),
        ),
        (
            "tenants".into(),
            Json::Num(inner.server.tenants().len() as f64),
        ),
        (
            "completed".into(),
            Json::Num(inner.server.obs().completed.get() as f64),
        ),
        (
            "worker_panics".into(),
            Json::Num(inner.server.worker_panics() as f64),
        ),
        (
            "obs_enabled".into(),
            Json::Bool(inner.server.obs().enabled()),
        ),
    ])
}

/// `POST /v1/search`: decode, submit for the `X-Tenant` tenant (default 0)
/// under the `X-Deadline-Ms` budget (default: the policy's), wait on the
/// ticket with a bounded, shutdown-aware poll loop, encode the merged
/// result.
fn search(inner: &FrontendInner, head: &RequestHead<'_>, body: &[u8]) -> Reply {
    let tenant = match head.header("x-tenant") {
        None => TenantId(0),
        Some(raw) => match raw.trim().parse::<u16>() {
            Ok(id) => TenantId(id),
            Err(_) => return bad_request("X-Tenant must be an integer tenant id"),
        },
    };
    let deadline = match head.header("x-deadline-ms") {
        None => None,
        Some(raw) => match raw.trim().parse::<f64>() {
            Ok(ms) if ms.is_finite() && ms > 0.0 => Some(Duration::from_secs_f64(ms / 1e3)),
            _ => return bad_request("X-Deadline-Ms must be a positive number of milliseconds"),
        },
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return bad_request("body must be UTF-8 JSON");
    };
    let json = match Json::parse(text) {
        Ok(json) => json,
        Err(err) => return bad_request(&err.to_string()),
    };
    let query = match wire::search_request_from_json(&json) {
        Ok(query) => query,
        Err(err) => return bad_request(&err.to_string()),
    };
    // W3C trace context: a malformed `traceparent` is treated as absent
    // (restart the trace) rather than rejected.
    let trace = head.header("traceparent").and_then(parse_traceparent);
    match inner
        .server
        .submit_with_trace(tenant, query, deadline, trace)
    {
        Ok(ticket) => {
            let waited_from = inner.server.clock().now();
            wait_for_ticket(inner, ticket, waited_from)
        }
        Err(err @ AdmissionError::QueueFull { .. }) => Reply {
            status: (429, "Too Many Requests"),
            body: wire::error_body(&err.to_string()),
            headers: vec![(
                "Retry-After".into(),
                inner.server.retry_after_hint(tenant).to_string(),
            )],
            content_type: JSON_CT,
        },
        Err(err @ AdmissionError::UnknownTenant { .. }) => bad_request(&err.to_string()),
        Err(err @ AdmissionError::InvalidQuery { .. }) => bad_request(&err.to_string()),
        Err(err @ AdmissionError::DeadlineUnmeetable { .. }) => {
            Reply::json((504, "Gateway Timeout"), wire::error_body(&err.to_string()))
        }
        Err(AdmissionError::ShuttingDown) => Reply::json(
            (503, "Service Unavailable"),
            wire::error_body("server is shutting down"),
        ),
    }
}

/// Waits for an admitted request's response without ever blocking
/// unboundedly: the wait is sliced into [`POLL_INTERVAL`] chunks, and every
/// slice re-checks shutdown, the request's deadline (on the server's own
/// clock, so VirtualClock tests drive it deterministically), and — for
/// unbudgeted requests — the policy's `max_http_wait` cap. A stalled
/// pipeline therefore answers 504 instead of hanging the connection
/// forever, and shutdown no longer waits on abandoned tickets.
fn wait_for_ticket(inner: &FrontendInner, ticket: Ticket, waited_from: SimTime) -> Reply {
    let budgeted = ticket.deadline().is_some();
    let gateway_timeout = |message: &str| -> Reply {
        Reply::json((504, "Gateway Timeout"), wire::error_body(message))
    };
    let clock = inner.server.clock();
    let max_wait = inner.server.deadline_policy().max_http_wait;
    let mut ticket = ticket;
    loop {
        match ticket.wait_timeout(POLL_INTERVAL) {
            Ok(Some(response)) => {
                let mut reply = Reply::json(OK, wire::search_response_to_json(&response).render());
                reply.headers.push((
                    "traceparent".into(),
                    format_traceparent(response.trace, response.id),
                ));
                return reply;
            }
            Ok(None) => {
                // The reply channel disconnected without a response: either
                // the runtime dropped the job at a deadline shed (rungs 2/5)
                // or the server is tearing down.
                return if budgeted && !inner.shutting_down.load(Ordering::SeqCst) {
                    gateway_timeout("request shed: its deadline budget was unmeetable")
                } else {
                    Reply::json(
                        (503, "Service Unavailable"),
                        wire::error_body("server stopped before the request completed"),
                    )
                };
            }
            Err(still_waiting) => {
                ticket = still_waiting;
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return Reply::json(
                        (503, "Service Unavailable"),
                        wire::error_body("server is shutting down"),
                    );
                }
                let now = clock.now();
                match ticket.deadline() {
                    Some(deadline) if now >= deadline => {
                        return gateway_timeout(
                            "deadline exceeded while the request was in flight",
                        );
                    }
                    None if (now - waited_from).as_secs_f64() >= max_wait => {
                        return gateway_timeout("request exceeded the frontend's maximum wait");
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Serializes one response with explicit framing (`Content-Length` always
/// present, `Connection` reflecting the keep-alive decision).
fn encode_response(
    status: (u16, &str),
    body: &str,
    extra_headers: &[(String, String)],
    content_type: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status.0,
        status.1,
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

#[cfg(test)]
mod tests {
    //! Stalled-wait behavior, pinned without a single real sleep: the
    //! ticket under test is hand-made and its reply sender is held live,
    //! so the "pipeline" genuinely never answers — the only exits are the
    //! deadline check, the max-wait cap, and the shutdown flag, all driven
    //! on a [`VirtualClock`].

    use super::*;
    use crate::clock::{Clock, VirtualClock};
    use crate::config::ServeConfig;
    use crate::request::SearchResponse;
    use crossbeam::channel::Sender;
    use vlite_sim::SimDuration;
    use vlite_workload::{CorpusConfig, SyntheticCorpus};

    fn frontend_inner() -> (Arc<FrontendInner>, Arc<VirtualClock>) {
        let corpus = SyntheticCorpus::generate(&CorpusConfig {
            n_vectors: 512,
            dim: 8,
            n_centers: 8,
            zipf_exponent: 1.0,
            noise: 0.2,
            seed: 11,
        });
        let clock = Arc::new(VirtualClock::new());
        let server = RagServer::start_with_clock(&corpus, ServeConfig::small(), clock.clone())
            .expect("server starts");
        let started = server.clock().now();
        let inner = Arc::new(FrontendInner {
            server,
            config: HttpConfig::default(),
            shutting_down: AtomicBool::new(false),
            conn_threads: Mutex::new(Vec::new()),
            started,
        });
        (inner, clock)
    }

    /// A ticket no runtime thread knows about: holding the sender open
    /// stalls the wait forever, dropping it simulates a shed.
    fn stalled_ticket(deadline: Option<SimTime>) -> (Ticket, Sender<SearchResponse>) {
        // Reply channel carrying at most one response.
        let (tx, rx) = crossbeam::channel::unbounded();
        (
            Ticket {
                id: 0,
                tenant: TenantId(0),
                deadline,
                trace: crate::trace::TraceId(7),
                rx,
            },
            tx,
        )
    }

    #[test]
    fn stalled_budgeted_wait_times_out_at_the_deadline_tick() {
        let (inner, clock) = frontend_inner();
        let waited_from = clock.now();
        let deadline = waited_from + SimDuration::from_millis(10.0);
        let (ticket, _keep_alive) = stalled_ticket(Some(deadline));
        // Advance exactly to the deadline: `now >= deadline` holds by
        // equality, so the very first poll slice answers 504.
        clock.advance(SimDuration::from_millis(10.0));
        let reply = wait_for_ticket(&inner, ticket, waited_from);
        assert_eq!(reply.status.0, 504, "stalled budgeted wait must 504");
        assert!(
            reply.body.contains("deadline exceeded"),
            "unexpected body: {}",
            reply.body
        );
    }

    #[test]
    fn stalled_unbudgeted_wait_is_capped_by_max_http_wait() {
        let (inner, clock) = frontend_inner();
        let waited_from = clock.now();
        let (ticket, _keep_alive) = stalled_ticket(None);
        let max_wait = inner.server.deadline_policy().max_http_wait;
        clock.advance(SimDuration::from_secs_f64(max_wait));
        let reply = wait_for_ticket(&inner, ticket, waited_from);
        assert_eq!(reply.status.0, 504, "uncapped waits must not hang");
        assert!(
            reply.body.contains("maximum wait"),
            "unexpected body: {}",
            reply.body
        );
    }

    #[test]
    fn stalled_wait_observes_shutdown() {
        let (inner, clock) = frontend_inner();
        let waited_from = clock.now();
        let (ticket, _keep_alive) = stalled_ticket(None);
        inner.shutting_down.store(true, Ordering::SeqCst);
        let reply = wait_for_ticket(&inner, ticket, waited_from);
        assert_eq!(reply.status.0, 503, "shutdown must end stalled waits");
        assert!(reply.body.contains("shutting down"));
    }

    #[test]
    fn shed_budgeted_request_maps_disconnect_to_504() {
        let (inner, clock) = frontend_inner();
        let waited_from = clock.now();
        let deadline = waited_from + SimDuration::from_millis(10.0);
        let (ticket, tx) = stalled_ticket(Some(deadline));
        drop(tx); // the runtime dropped the job: rung-2/5 shed
        let reply = wait_for_ticket(&inner, ticket, waited_from);
        assert_eq!(reply.status.0, 504);
        assert!(
            reply.body.contains("request shed"),
            "unexpected body: {}",
            reply.body
        );
    }

    #[test]
    fn shed_unbudgeted_request_maps_disconnect_to_503() {
        let (inner, clock) = frontend_inner();
        let waited_from = clock.now();
        let (ticket, tx) = stalled_ticket(None);
        drop(tx);
        let reply = wait_for_ticket(&inner, ticket, waited_from);
        assert_eq!(
            reply.status.0, 503,
            "an unbudgeted disconnect is teardown, not a deadline"
        );
    }

    #[test]
    fn connection_panic_is_counted_and_journaled() {
        let (inner, _clock) = frontend_inner();
        inner.server.record_connection_panic();
        assert_eq!(inner.server.report().worker_panics, 1);
        let journal = inner.server.obs().journal_snapshot();
        assert!(
            journal
                .iter()
                .any(|e| e.kind == "panic" && e.detail.contains("connection thread")),
            "panic must reach the event journal"
        );
    }

    #[test]
    fn retry_after_hint_is_never_zero() {
        let (inner, _clock) = frontend_inner();
        // Even an idle lane must back a 429 with at least one second:
        // `Retry-After: 0` tells a flooding client to retry immediately.
        assert!(inner.server.retry_after_hint(TenantId(0)) >= 1);
        assert!(inner.server.retry_after_hint(TenantId(999)) >= 1);
    }
}
