//! Incremental, zero-copy HTTP/1.1 request parsing.
//!
//! The connection loop accumulates bytes in a growable buffer and calls
//! [`parse_head`] after every read: `Ok(None)` means "need more bytes",
//! `Ok(Some(..))` yields a [`RequestHead`] *borrowing* the buffer (no
//! copies; body bytes follow at the returned offset), and `Err` is a
//! protocol violation the connection answers with `400`/`431` and closes.
//! Partial reads, pipelined requests and keep-alive reuse all fall out of
//! this shape: the caller drains exactly the consumed prefix and re-parses
//! whatever is left.

/// Largest request head (request line + headers + CRLFCRLF) accepted.
/// Beyond this the peer is either broken or hostile.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// The two HTTP versions the frontend speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0` — one request per connection unless keep-alive is asked.
    Http10,
    /// `HTTP/1.1` — persistent connections by default.
    Http11,
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine,
    /// A header line is not `name: value` (or is not valid UTF-8).
    BadHeader,
    /// The version token is not `HTTP/1.0` or `HTTP/1.1`.
    UnsupportedVersion,
    /// `Content-Length` is present but not a base-10 integer (or repeats
    /// with conflicting values — request smuggling territory).
    BadContentLength,
    /// The head grew past [`MAX_HEAD_BYTES`] without terminating.
    HeadTooLarge,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self {
            ParseError::BadRequestLine => "malformed request line",
            ParseError::BadHeader => "malformed header",
            ParseError::UnsupportedVersion => "unsupported HTTP version",
            ParseError::BadContentLength => "invalid Content-Length",
            ParseError::HeadTooLarge => "request head too large",
        };
        f.write_str(what)
    }
}

impl std::error::Error for ParseError {}

/// One parsed request head, borrowing the connection buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct RequestHead<'a> {
    /// The method token, verbatim (e.g. `GET`, `POST`).
    pub method: &'a str,
    /// The request target with any query string still attached.
    pub target: &'a str,
    /// Protocol version.
    pub version: Version,
    headers: Vec<(&'a str, &'a str)>,
}

impl<'a> RequestHead<'a> {
    /// The target's path component (query string stripped).
    pub fn path(&self) -> &'a str {
        self.target
            .split_once('?')
            .map_or(self.target, |(path, _)| path)
    }

    /// Case-insensitive header lookup (first occurrence).
    pub fn header(&self, name: &str) -> Option<&'a str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|&(_, v)| v)
    }

    /// The declared body length. Absent means zero (the frontend does not
    /// speak chunked transfer encoding — a request asking for it is
    /// answered before any body handling, see the connection loop).
    ///
    /// # Errors
    ///
    /// [`ParseError::BadContentLength`] for a non-numeric value or
    /// conflicting repeats.
    pub fn content_length(&self) -> Result<usize, ParseError> {
        let mut declared: Option<usize> = None;
        for (name, value) in &self.headers {
            if name.eq_ignore_ascii_case("content-length") {
                let digits = value.trim();
                // RFC 9110: DIGIT only. Rust's `parse` would also accept a
                // leading '+', which an RFC-strict proxy in front of this
                // server would reject — a framing disagreement (request
                // smuggling), so reject it here too.
                if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(ParseError::BadContentLength);
                }
                let parsed: usize = digits.parse().map_err(|_| ParseError::BadContentLength)?;
                match declared {
                    Some(previous) if previous != parsed => {
                        return Err(ParseError::BadContentLength)
                    }
                    _ => declared = Some(parsed),
                }
            }
        }
        Ok(declared.unwrap_or(0))
    }

    /// Whether the client asked for chunked transfer encoding (which the
    /// frontend rejects rather than mis-frames).
    pub fn is_chunked(&self) -> bool {
        self.header("transfer-encoding")
            .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"))
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 defaults to yes unless `Connection: close`, HTTP/1.0 to no
    /// unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let connection = self.header("connection").map(str::to_ascii_lowercase);
        match self.version {
            Version::Http11 => connection.as_deref() != Some("close"),
            Version::Http10 => connection.as_deref() == Some("keep-alive"),
        }
    }

    /// Whether the client sent `Expect: 100-continue` and is waiting for
    /// an interim response before transmitting the body.
    pub fn expects_continue(&self) -> bool {
        self.header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    }
}

/// Attempts to parse one request head from the front of `buf`.
///
/// Returns `Ok(None)` when the head is not yet complete (read more and call
/// again) and `Ok(Some((head, head_len)))` when it is — the body, if any,
/// starts at `buf[head_len..]`.
///
/// # Errors
///
/// Any [`ParseError`]; the connection cannot recover its framing after one.
pub fn parse_head(buf: &[u8]) -> Result<Option<(RequestHead<'_>, usize)>, ParseError> {
    let Some(head_end) = find_double_crlf(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(ParseError::HeadTooLarge);
    }
    let head_len = head_end + 4;
    let text = std::str::from_utf8(&buf[..head_end]).map_err(|_| ParseError::BadHeader)?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;

    let mut tokens = request_line.split(' ');
    let method = tokens.next().filter(|m| !m.is_empty() && is_token(m));
    let target = tokens.next().filter(|t| !t.is_empty());
    let version = tokens.next();
    let (Some(method), Some(target), Some(version), None) =
        (method, target, version, tokens.next())
    else {
        return Err(ParseError::BadRequestLine);
    };
    let version = match version {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        v if v.starts_with("HTTP/") => return Err(ParseError::UnsupportedVersion),
        _ => return Err(ParseError::BadRequestLine),
    };

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty() || !is_token(name) {
            // Leading whitespace in the name would be obs-fold continuation;
            // reject it like modern servers do.
            return Err(ParseError::BadHeader);
        }
        headers.push((name, value.trim()));
    }

    Ok(Some((
        RequestHead {
            method,
            target,
            version,
            headers,
        },
        head_len,
    )))
}

/// Byte offset of the first `\r\n\r\n`, if present.
fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// RFC 9110 `token` characters (method and header names).
fn is_token(s: &str) -> bool {
    s.bytes()
        .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIMPLE: &[u8] = b"GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n";

    #[test]
    fn parses_a_complete_head() {
        let (head, consumed) = parse_head(SIMPLE).unwrap().expect("complete");
        assert_eq!(head.method, "GET");
        assert_eq!(head.target, "/healthz");
        assert_eq!(head.version, Version::Http11);
        assert_eq!(head.header("host"), Some("localhost"));
        assert_eq!(head.header("HOST"), Some("localhost"));
        assert_eq!(consumed, SIMPLE.len());
    }

    #[test]
    fn incremental_prefixes_ask_for_more_bytes() {
        // Every strict prefix parses to "need more", never an error — the
        // split/partial-read contract the connection loop relies on.
        for cut in 0..SIMPLE.len() {
            assert!(
                matches!(parse_head(&SIMPLE[..cut]), Ok(None)),
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_left_for_the_next_request() {
        let mut pipelined = SIMPLE.to_vec();
        pipelined.extend_from_slice(b"GET /v1/report HTTP/1.1\r\n\r\n");
        let (head, consumed) = parse_head(&pipelined).unwrap().expect("complete");
        assert_eq!(head.target, "/healthz");
        let (second, _) = parse_head(&pipelined[consumed..]).unwrap().expect("second");
        assert_eq!(second.target, "/v1/report");
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET  /x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "G<T /x HTTP/1.1\r\n\r\n",
            " GET /x HTTP/1.1\r\n\r\n",
        ] {
            assert_eq!(
                parse_head(bad.as_bytes()),
                Err(ParseError::BadRequestLine),
                "accepted {bad:?}"
            );
        }
        assert_eq!(
            parse_head(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(ParseError::UnsupportedVersion)
        );
        assert_eq!(
            parse_head(b"GET /x FTP/1.0\r\n\r\n"),
            Err(ParseError::BadRequestLine)
        );
    }

    #[test]
    fn malformed_headers_are_rejected() {
        for bad in [
            "GET /x HTTP/1.1\r\nno-colon\r\n\r\n",
            "GET /x HTTP/1.1\r\n: empty-name\r\n\r\n",
            "GET /x HTTP/1.1\r\n sp-name: v\r\n\r\n",
        ] {
            assert_eq!(parse_head(bad.as_bytes()), Err(ParseError::BadHeader));
        }
    }

    #[test]
    fn content_length_parsing_and_smuggling_guard() {
        let head = |text: &'static str| {
            let raw = format!("POST /v1/search HTTP/1.1\r\n{text}\r\n");
            let buf = Box::leak(raw.into_bytes().into_boxed_slice());
            parse_head(buf).unwrap().unwrap().0.content_length()
        };
        assert_eq!(head("Content-Length: 42\r\n"), Ok(42));
        assert_eq!(head(""), Ok(0));
        assert_eq!(head("Content-Length: 7\r\nContent-Length: 7\r\n"), Ok(7));
        assert_eq!(
            head("Content-Length: 7\r\nContent-Length: 8\r\n"),
            Err(ParseError::BadContentLength)
        );
        assert_eq!(
            head("Content-Length: -1\r\n"),
            Err(ParseError::BadContentLength)
        );
        assert_eq!(
            head("Content-Length: +5\r\n"),
            Err(ParseError::BadContentLength),
            "RFC 9110 allows digits only; a '+' sign is a proxy framing hazard"
        );
        assert_eq!(
            head("Content-Length: 4 4\r\n"),
            Err(ParseError::BadContentLength)
        );
    }

    #[test]
    fn keep_alive_defaults_follow_the_version() {
        let parse = |raw: &'static str| {
            let buf = Box::leak(raw.to_string().into_bytes().into_boxed_slice());
            parse_head(buf).unwrap().unwrap().0
        };
        assert!(parse("GET / HTTP/1.1\r\n\r\n").keep_alive());
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").keep_alive());
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive());
    }

    #[test]
    fn oversized_heads_fail_instead_of_buffering_forever() {
        let mut endless = b"GET / HTTP/1.1\r\nX-Fill: ".to_vec();
        endless.resize(MAX_HEAD_BYTES + 2, b'a');
        assert_eq!(parse_head(&endless), Err(ParseError::HeadTooLarge));
    }
}
