//! A small, dependency-free JSON encoder/decoder for the HTTP boundary.
//!
//! The workspace's `serde` is a no-op offline shim (its derives expand to
//! nothing), so the network frontend hand-rolls the wire format: a [`Json`]
//! value tree, a recursive-descent parser with a depth guard (the decoder
//! faces untrusted network input), and a compact renderer. Rust's `f64`
//! `Display` emits the shortest representation that round-trips, so
//! `parse(render(v)) == v` holds exactly for every finite number.

use std::fmt::Write as _;

/// Nesting depth past which the parser rejects input rather than recurse
/// (protects the connection thread's stack from `[[[[…` bombs).
const MAX_DEPTH: usize = 64;

/// One JSON value.
///
/// Objects preserve key order as a `Vec` of pairs — the frontend never
/// needs associative lookup at scale, and ordered rendering keeps responses
/// byte-stable for tests and diffing.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Static description of what was expected.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("end of document"));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON (no insignificant whitespace).
    /// Non-finite numbers render as `null` — they have no JSON spelling.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match; objects built by this crate never
    /// repeat keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &'static str, what: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting shallower than the depth limit"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", "null").map(|()| Json::Null),
            Some(b't') => self
                .expect_literal("true", "true")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .expect_literal("false", "false")
                .map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("',' or ']'"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("an object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("':'"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(pairs));
            }
            if !self.eat(b',') {
                return Err(self.err("',' or '}'"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("valid UTF-8"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("a closing '\"'")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = match self.peek() {
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{08}',
            Some(b'f') => '\u{0c}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                let hi = self.hex4()?;
                // Surrogate pair: a high surrogate must be followed by
                // "\uDC00".."\uDFFF"; anything else is malformed.
                let code = if (0xd800..0xdc00).contains(&hi) {
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("a low surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(self.err("a low surrogate"));
                    }
                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                } else {
                    hi
                };
                return char::from_u32(code).ok_or_else(|| self.err("a valid code point"));
            }
            _ => return Err(self.err("a valid escape")),
        };
        self.pos += 1;
        Ok(c)
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("four hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        // Integer part: "0" or a nonzero-led digit run (JSON grammar).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("a digit")),
        }
        if self.eat(b'.') {
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("a fraction digit"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("an exponent digit"));
            }
            self.digits();
        }
        // The scanned range is digits/sign/dot/exponent bytes only, so
        // UTF-8 decoding cannot fail; degrade to a parse error anyway
        // rather than panic inside the request path.
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.err("a representable number"));
        };
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("a representable number"))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#"{"a":[1,2,{"b":"c"}],"d":false}"#).unwrap(),
            Json::Obj(vec![
                (
                    "a".into(),
                    Json::Arr(vec![
                        Json::Num(1.0),
                        Json::Num(2.0),
                        Json::Obj(vec![("b".into(), Json::Str("c".into()))]),
                    ]),
                ),
                ("d".into(), Json::Bool(false)),
            ])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("quote\" slash\\ newline\n tab\t nul\u{1} émoji🦀".into());
        let text = original.render();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // Surrogate-pair escapes decode to the astral character.
        assert_eq!(
            Json::parse(r#""\ud83e\udd80""#).unwrap(),
            Json::Str("🦀".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "nul",
            "01",
            "1.e3",
            "\"\\q\"",
            "1 2",
            "{\"a\":1,}",
            "\"\\ud800x\"",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_bomb_is_rejected_not_overflowed() {
        let bomb = "[".repeat(10_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for x in [0.0, -0.0, 1.0, 0.1, 1e-9, 123456789.123456, f64::MAX] {
            let text = Json::Num(x).render();
            assert_eq!(Json::parse(&text).unwrap(), Json::Num(x), "via {text}");
        }
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
