//! JSON wire mappings for the HTTP API's request/response types.
//!
//! Each type crossing the socket gets an explicit encode/decode pair over
//! [`Json`] — no derive magic, so the wire format is spelled out in one
//! place and round-trip tested. Decoders validate shape strictly: a missing
//! or mistyped field is a [`WireError`], which the frontend maps to `400`.

use vlite_ann::Neighbor;

use crate::config::TenantSpec;
use crate::http::json::Json;
use crate::request::{GenerationTimings, RequestTimings, SearchResponse, TenantId};
use crate::trace::TraceId;

/// A field-level decode failure (maps to `400 Bad Request`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError {
    /// Which field was missing or mistyped.
    pub field: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "missing or invalid field: {}", self.field)
    }
}

impl std::error::Error for WireError {}

fn field<'a>(value: &'a Json, name: &'static str) -> Result<&'a Json, WireError> {
    value.get(name).ok_or(WireError { field: name })
}

fn num(value: &Json, name: &'static str) -> Result<f64, WireError> {
    field(value, name)?
        .as_f64()
        .ok_or(WireError { field: name })
}

fn int(value: &Json, name: &'static str) -> Result<u64, WireError> {
    field(value, name)?
        .as_u64()
        .ok_or(WireError { field: name })
}

/// Encodes a search request body: `{"query":[…]}`.
pub fn search_request_to_json(query: &[f32]) -> Json {
    Json::Obj(vec![(
        "query".into(),
        Json::Arr(query.iter().map(|&x| Json::Num(f64::from(x))).collect()),
    )])
}

/// Decodes a search request body into the query vector.
///
/// # Errors
///
/// [`WireError`] when `query` is missing, not an array of numbers, or
/// empty.
pub fn search_request_from_json(value: &Json) -> Result<Vec<f32>, WireError> {
    let items = field(value, "query")?
        .as_array()
        .ok_or(WireError { field: "query" })?;
    if items.is_empty() {
        return Err(WireError { field: "query" });
    }
    items
        .iter()
        .map(|item| {
            #[allow(clippy::cast_possible_truncation)]
            item.as_f64()
                .map(|x| x as f32)
                .ok_or(WireError { field: "query" })
        })
        .collect()
}

/// Encodes a completed search: id, tenant, generation, hit rate, per-stage
/// timings (with the generation phases when the server co-schedules an LLM
/// stage — `null` otherwise), and the merged neighbor list.
pub fn search_response_to_json(response: &SearchResponse) -> Json {
    let generation_timings = match &response.timings.generation {
        None => Json::Null,
        Some(g) => Json::Obj(vec![
            ("gen_queue".into(), Json::Num(g.gen_queue)),
            ("prefill".into(), Json::Num(g.prefill)),
            ("decode".into(), Json::Num(g.decode)),
            ("ttft".into(), Json::Num(g.ttft)),
        ]),
    };
    Json::Obj(vec![
        ("id".into(), Json::Num(response.id as f64)),
        ("tenant".into(), Json::Num(f64::from(response.tenant.0))),
        ("generation".into(), Json::Num(response.generation as f64)),
        ("hit_rate".into(), Json::Num(response.hit_rate)),
        ("trace_id".into(), Json::Str(response.trace.to_string())),
        (
            "timings".into(),
            Json::Obj(vec![
                ("queue".into(), Json::Num(response.timings.queue)),
                ("search".into(), Json::Num(response.timings.search)),
                ("e2e".into(), Json::Num(response.timings.e2e)),
                ("generation".into(), generation_timings),
            ]),
        ),
        (
            "neighbors".into(),
            Json::Arr(
                response
                    .neighbors
                    .iter()
                    .map(|n| {
                        Json::Obj(vec![
                            ("id".into(), Json::Num(n.id as f64)),
                            ("distance".into(), Json::Num(f64::from(n.distance))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a search response (the HTTP load generator's side of the wire).
///
/// # Errors
///
/// [`WireError`] on any missing or mistyped field.
pub fn search_response_from_json(value: &Json) -> Result<SearchResponse, WireError> {
    let timings = field(value, "timings")?;
    let neighbors = field(value, "neighbors")?
        .as_array()
        .ok_or(WireError { field: "neighbors" })?
        .iter()
        .map(|n| {
            #[allow(clippy::cast_possible_truncation)]
            Ok(Neighbor::new(int(n, "id")?, num(n, "distance")? as f32))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let tenant = int(value, "tenant")?;
    let tenant = u16::try_from(tenant).map_err(|_| WireError { field: "tenant" })?;
    // Absent and `null` both mean "retrieval only" (absent keeps old
    // clients' encodings decodable).
    let generation_timings = match timings.get("generation") {
        None | Some(Json::Null) => None,
        Some(g) => Some(GenerationTimings {
            gen_queue: num(g, "gen_queue")?,
            prefill: num(g, "prefill")?,
            decode: num(g, "decode")?,
            ttft: num(g, "ttft")?,
        }),
    };
    Ok(SearchResponse {
        id: int(value, "id")?,
        tenant: TenantId(tenant),
        neighbors,
        timings: RequestTimings {
            queue: num(timings, "queue")?,
            search: num(timings, "search")?,
            e2e: num(timings, "e2e")?,
            generation: generation_timings,
        },
        hit_rate: num(value, "hit_rate")?,
        generation: int(value, "generation")?,
        // Absent on old encodings; the zero id marks "no trace".
        trace: TraceId(
            value
                .get("trace_id")
                .and_then(Json::as_str)
                .and_then(vlite_metrics::spans::parse_trace_id)
                .unwrap_or(0),
        ),
    })
}

/// Encodes the tenant table for `GET /v1/tenants`.
pub fn tenants_to_json(tenants: &[TenantSpec]) -> Json {
    Json::Arr(
        tenants
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                Json::Obj(vec![
                    ("tenant".into(), Json::Num(i as f64)),
                    ("weight".into(), Json::Num(f64::from(spec.weight))),
                    (
                        "queue_capacity".into(),
                        Json::Num(spec.queue_capacity as f64),
                    ),
                    ("slo_search".into(), Json::Num(spec.slo_search)),
                ])
            })
            .collect(),
    )
}

/// A machine-readable error body: `{"error":"…"}`.
pub fn error_body(message: &str) -> String {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_request_round_trips() {
        let query = vec![0.25f32, -1.5, 3.0e-7, 42.0];
        let json = search_request_to_json(&query);
        let text = json.render();
        let back = search_request_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, query);
    }

    #[test]
    fn search_request_rejects_bad_shapes() {
        for bad in [
            r#"{}"#,
            r#"{"query":[]}"#,
            r#"{"query":"nope"}"#,
            r#"{"query":[1,"x"]}"#,
        ] {
            let value = Json::parse(bad).unwrap();
            assert!(search_request_from_json(&value).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn search_response_round_trips() {
        let original = SearchResponse {
            id: 7,
            tenant: TenantId(3),
            neighbors: vec![Neighbor::new(12, 0.125), Neighbor::new(99, 1.75)],
            timings: RequestTimings {
                queue: 0.001,
                search: 0.0045,
                e2e: 0.0055,
                generation: Some(GenerationTimings {
                    gen_queue: 0.0002,
                    prefill: 0.006,
                    decode: 0.031,
                    ttft: 0.0117,
                }),
            },
            hit_rate: 0.625,
            generation: 2,
            trace: TraceId(0xdead_beef_0000_0000_0000_0000_0000_0001),
        };
        let text = search_response_to_json(&original).render();
        let back = search_response_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.id, original.id);
        assert_eq!(back.tenant, original.tenant);
        assert_eq!(back.neighbors, original.neighbors);
        assert_eq!(back.timings, original.timings);
        assert_eq!(back.hit_rate, original.hit_rate);
        assert_eq!(back.generation, original.generation);
        assert_eq!(back.trace, original.trace);
    }

    #[test]
    fn search_response_without_trace_id_still_decodes() {
        let value = Json::parse(
            r#"{"id":1,"tenant":0,"generation":0,"hit_rate":1.0,
                "timings":{"queue":0.0,"search":0.0,"e2e":0.0,"generation":null},
                "neighbors":[]}"#,
        )
        .unwrap();
        let back = search_response_from_json(&value).unwrap();
        assert_eq!(back.trace, TraceId(0));
    }

    #[test]
    fn tenant_table_encodes_every_row() {
        let json = tenants_to_json(&[
            TenantSpec {
                weight: 1,
                queue_capacity: 64,
                slo_search: 0.01,
            },
            TenantSpec {
                weight: 4,
                queue_capacity: 256,
                slo_search: 0.05,
            },
        ]);
        let rows = json.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("weight").unwrap().as_u64(), Some(4));
        assert_eq!(rows[1].get("slo_search").unwrap().as_f64(), Some(0.05));
    }
}
