//! The background tier migrator.
//!
//! Online repartitioning used to end at the router hot-swap: the placement
//! changed where probes were *routed*, but every cluster's bytes stayed
//! where they were. With a [`TieredStore`] behind the scan path, the
//! control loop also emits a [`MigrationOrder`] after each swap, and this
//! worker applies it: newly hot clusters are promoted (their
//! full-precision extents materialized from the segment file into
//! resident arenas), newly cold ones demoted (arenas released, scans fall
//! back to the mmap'd SQ8 extents).
//!
//! The migration is non-blocking by construction, the same hot-swap
//! discipline as the Router: all promotion I/O happens outside the tier
//! map's lock, the swap is one pointer store, and scans already running
//! keep their snapshot's arenas alive through `Arc`s. Between the router
//! swap and the tier swap the two can disagree — a newly hot cluster may
//! still scan cold for a few batches — which is *correct* (both tiers
//! return the cluster's vectors, at different precision) and exactly the
//! paper's "service never stops" full-shard update behaviour.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Receiver;

use crate::request::TenantId;
use crate::server::Shared;
use crate::trace::STAGE_MIGRATE;

/// One tier-migration request from the control loop to the migrator.
#[derive(Debug)]
pub(crate) struct MigrationOrder {
    /// The placement generation whose hot set this order realizes.
    pub placement_generation: u64,
    /// The tenant whose drift monitor tripped the repartition.
    pub triggered_by: TenantId,
    /// The new hot flags, indexed by cluster id.
    pub hot: Vec<bool>,
}

/// One applied tier migration, as reported in
/// [`ServeReport`](crate::ServeReport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationEvent {
    /// The placement generation this migration realized.
    pub placement_generation: u64,
    /// The store generation installed by this migration.
    pub store_generation: u64,
    /// The tenant whose drift monitor tripped the repartition behind it.
    pub triggered_by: TenantId,
    /// Clusters promoted cold → hot.
    pub promoted: usize,
    /// Clusters demoted hot → cold.
    pub demoted: usize,
    /// Bytes materialized into resident arenas.
    pub bytes_promoted: u64,
    /// Resident bytes released back to the cold tier.
    pub bytes_demoted: u64,
    /// Dispatcher batches completed when the migration began.
    pub batches_before: u64,
    /// Dispatcher batches completed when the migration finished — the gap
    /// to `batches_before` shows the engine kept draining throughout.
    pub batches_after: u64,
    /// Clock duration of the promotion I/O + swap.
    pub duration: Duration,
}

/// The migrator thread: applies tier shifts as repartitions install new
/// placements. Exits when the control loop drops its order sender.
pub(crate) fn migrator_worker(shared: &Arc<Shared>, rx: &Receiver<MigrationOrder>) {
    shared.trace.register_worker(STAGE_MIGRATE);
    let Some(store) = shared.store.as_ref() else {
        // No tiered store: drain orders (none should arrive) until close.
        while rx.recv().is_ok() {}
        return;
    };
    while let Ok(order) = rx.recv() {
        let started = shared.clock.now();
        let timer = shared.trace.stage_start(STAGE_MIGRATE, started);
        let batches_before = crate::sync::lock_recover(&shared.metrics).batches;
        let shift = store.apply_placement(&order.hot);
        let batches_after = crate::sync::lock_recover(&shared.metrics).batches;
        let finished = shared.clock.now();
        shared.trace.stage_end(timer, finished);
        // The migration span lives in its own trace, linked both ways to
        // whatever batch was in flight while the tiers moved.
        shared
            .trace
            .record_migration("migration", started, finished);
        let event = MigrationEvent {
            placement_generation: order.placement_generation,
            store_generation: shift.generation,
            triggered_by: order.triggered_by,
            promoted: shift.promoted,
            demoted: shift.demoted,
            bytes_promoted: shift.bytes_promoted,
            bytes_demoted: shift.bytes_demoted,
            batches_before,
            batches_after,
            duration: (shared.clock.now() - started).to_std(),
        };
        shared.record_migration(event);
    }
}
