//! Bounded admission queue with on-demand batch draining.
//!
//! The queue is the runtime's admission-control point: `try_push` rejects
//! when the bound is hit (the open-loop generator keeps producing; the
//! server must shed load rather than grow latency without bound), and
//! `take_batch` blocks until work exists, then drains up to `max` requests
//! in one pop — the paper's dynamic on-demand batching (§VI-B): a batch
//! launches the moment the engine goes idle and absorbs everything queued.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::request::Job;

#[derive(Debug, Default)]
struct Inner {
    jobs: VecDeque<Job>,
    closed: bool,
    admitted: u64,
    rejected: u64,
    peak_depth: usize,
}

/// Snapshot of the queue's admission counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct QueueStats {
    pub admitted: u64,
    pub rejected: u64,
    pub peak_depth: usize,
}

/// The bounded MPMC admission queue.
#[derive(Debug)]
pub(crate) struct RequestQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    capacity: usize,
}

impl RequestQueue {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            inner: Mutex::new(Inner::default()),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job, or returns it when the queue is full / closed.
    /// `Err((job, closed))` reports which of the two happened.
    pub fn try_push(&self, job: Job) -> Result<(), (Job, bool)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err((job, true));
        }
        if inner.jobs.len() >= self.capacity {
            inner.rejected += 1;
            return Err((job, false));
        }
        inner.jobs.push_back(job);
        inner.admitted += 1;
        let depth = inner.jobs.len();
        inner.peak_depth = inner.peak_depth.max(depth);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until at least one job is queued, then drains up to `max` in
    /// arrival order. Returns `None` once the queue is closed *and* empty
    /// (graceful shutdown serves the backlog first).
    pub fn take_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if !inner.jobs.is_empty() {
                let take = inner.jobs.len().min(max.max(1));
                return Some(inner.jobs.drain(..take).collect());
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Marks the queue closed and wakes every waiter.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Requests currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").jobs.len()
    }

    pub fn stats(&self) -> QueueStats {
        let inner = self.inner.lock().expect("queue poisoned");
        QueueStats {
            admitted: inner.admitted,
            rejected: inner.rejected,
            peak_depth: inner.peak_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;
    use std::time::Instant;

    fn job(id: u64) -> Job {
        let (reply, _rx) = channel::unbounded();
        Job {
            id,
            query: vec![0.0],
            enqueued: Instant::now(),
            reply,
        }
    }

    #[test]
    fn rejects_beyond_capacity_and_counts() {
        let q = RequestQueue::new(2);
        assert!(q.try_push(job(0)).is_ok());
        assert!(q.try_push(job(1)).is_ok());
        let err = q.try_push(job(2)).unwrap_err();
        assert!(!err.1, "full, not closed");
        let stats = q.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.peak_depth, 2);
    }

    #[test]
    fn take_batch_absorbs_everything_up_to_max() {
        let q = RequestQueue::new(16);
        for id in 0..5 {
            q.try_push(job(id)).unwrap();
        }
        let batch = q.take_batch(64).expect("work queued");
        assert_eq!(batch.len(), 5);
        assert_eq!(
            batch.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn take_batch_respects_max() {
        let q = RequestQueue::new(16);
        for id in 0..5 {
            q.try_push(job(id)).unwrap();
        }
        assert_eq!(q.take_batch(3).unwrap().len(), 3);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_backlog_then_ends() {
        let q = RequestQueue::new(16);
        q.try_push(job(0)).unwrap();
        q.close();
        assert!(q.try_push(job(1)).is_err(), "closed queue admits nothing");
        assert_eq!(q.take_batch(8).unwrap().len(), 1);
        assert!(q.take_batch(8).is_none());
    }

    #[test]
    fn blocked_taker_wakes_on_push() {
        let q = std::sync::Arc::new(RequestQueue::new(4));
        let q2 = q.clone();
        let taker = std::thread::spawn(move || q2.take_batch(8).map(|b| b.len()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(job(7)).unwrap();
        assert_eq!(taker.join().unwrap(), Some(1));
    }
}
