//! Multi-tenant bounded admission with weighted-fair batch draining.
//!
//! The queue is the runtime's admission-control point, one bounded lane per
//! tenant behind a single facade:
//!
//! - `try_push` charges the submitting tenant's quota and rejects *that*
//!   tenant when its lane is full (the open-loop generator keeps producing;
//!   the server must shed the overloading tenant's load rather than grow
//!   everyone's latency without bound). A rejection never evicts or delays
//!   another tenant's queued work.
//! - `take_batch` blocks until any lane has work, then drains up to `max`
//!   requests in one pop — the paper's dynamic on-demand batching (§VI-B) —
//!   interleaving tenants by smooth weighted round-robin, so a backlogged
//!   tenant holds at most `weight / Σ backlogged weights` of each batch
//!   while other tenants have queued work, and the whole batch when it is
//!   alone (work conservation).
//!
//! The scheduler is the classic smooth-WRR deficit scheme: each pick adds
//! every backlogged lane's weight to its credit, serves the lane with the
//! largest credit, and charges that lane the sum of backlogged weights.
//! Credits only move while a lane is backlogged, so an idle tenant cannot
//! bank credit and burst past its share when it returns; credits stay
//! bounded by the total weight.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::config::TenantSpec;
use crate::request::{Job, TenantId};
use crate::sync::{lock_recover, wait_recover};
use vlite_sim::SimTime;

/// EWMA smoothing for the drain-rate estimate: recent batches dominate so
/// the estimate tracks load shifts within a few batches, while one odd
/// inter-batch gap cannot swing it.
const DRAIN_ALPHA: f64 = 0.2;

/// One tenant's bounded lane plus its fair-share scheduling state.
#[derive(Debug)]
struct Lane {
    jobs: VecDeque<Job>,
    capacity: usize,
    weight: i64,
    /// Smooth-WRR deficit counter; grows by `weight` per pick while
    /// backlogged, charged the backlogged-weight total when served.
    credit: i64,
    admitted: u64,
    rejected: u64,
    peak_depth: usize,
}

#[derive(Debug)]
struct Inner {
    lanes: Vec<Lane>,
    total_depth: usize,
    peak_total_depth: usize,
    closed: bool,
    /// Recent drain throughput in jobs/sec (EWMA over `record_drain`
    /// samples); `0.0` until two drains have been observed.
    drain_rate: f64,
    /// Timestamp of the most recent drain, on the server's clock.
    last_drain: Option<SimTime>,
}

/// Snapshot of one tenant's admission counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TenantQueueStats {
    pub admitted: u64,
    pub rejected: u64,
    pub peak_depth: usize,
}

/// Snapshot of the whole facade's admission counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QueueStats {
    pub admitted: u64,
    pub rejected: u64,
    pub peak_depth: usize,
    pub tenants: Vec<TenantQueueStats>,
}

/// The bounded multi-tenant MPMC admission facade.
#[derive(Debug)]
pub(crate) struct AdmissionQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
}

impl AdmissionQueue {
    pub fn new(tenants: &[TenantSpec]) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        let lanes = tenants
            .iter()
            .map(|spec| {
                assert!(spec.queue_capacity > 0, "queue capacity must be positive");
                assert!(spec.weight > 0, "tenant weight must be positive");
                Lane {
                    jobs: VecDeque::new(),
                    capacity: spec.queue_capacity,
                    weight: i64::from(spec.weight),
                    credit: 0,
                    admitted: 0,
                    rejected: 0,
                    peak_depth: 0,
                }
            })
            .collect();
        Self {
            inner: Mutex::new(Inner {
                lanes,
                total_depth: 0,
                peak_total_depth: 0,
                closed: false,
                drain_rate: 0.0,
                last_drain: None,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// Admits a job into its tenant's lane, or returns it when that lane is
    /// full / the queue is closed. `Err((job, closed))` reports which of
    /// the two happened. Only the submitting tenant's counters are touched.
    pub fn try_push(&self, job: Job) -> Result<(), (Job, bool)> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err((job, true));
        }
        let lane = &mut inner.lanes[job.tenant.index()];
        if lane.jobs.len() >= lane.capacity {
            lane.rejected += 1;
            return Err((job, false));
        }
        lane.jobs.push_back(job);
        lane.admitted += 1;
        let depth = lane.jobs.len();
        lane.peak_depth = lane.peak_depth.max(depth);
        inner.total_depth += 1;
        inner.peak_total_depth = inner.peak_total_depth.max(inner.total_depth);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until at least one job is queued anywhere, then drains up to
    /// `max` jobs, interleaving backlogged tenants by smooth weighted
    /// round-robin (each tenant's lane drains in arrival order). Returns
    /// `None` once the queue is closed *and* fully empty (graceful shutdown
    /// serves every tenant's backlog first).
    pub fn take_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if inner.total_depth > 0 {
                return Some(inner.drain(max.max(1)));
            }
            if inner.closed {
                return None;
            }
            inner = wait_recover(&self.not_empty, inner);
        }
    }

    /// Records that the batcher drained `n` jobs at `now`, feeding the
    /// EWMA drain-rate estimate that backs admission feasibility and the
    /// `Retry-After` hint. The first call only seeds the timestamp; the
    /// rate needs two drains before it reads non-zero.
    pub fn record_drain(&self, n: usize, now: SimTime) {
        if n == 0 {
            return;
        }
        let mut inner = lock_recover(&self.inner);
        if let Some(prev) = inner.last_drain {
            let dt = now.duration_since(prev).as_secs_f64();
            if dt > 0.0 {
                let inst = n as f64 / dt;
                inner.drain_rate = if inner.drain_rate > 0.0 {
                    (1.0 - DRAIN_ALPHA) * inner.drain_rate + DRAIN_ALPHA * inst
                } else {
                    inst
                };
            }
        }
        inner.last_drain = Some(now);
    }

    /// Recent drain throughput in jobs/sec (`0.0` until measured).
    #[cfg(test)]
    pub fn drain_rate(&self) -> f64 {
        lock_recover(&self.inner).drain_rate
    }

    /// Estimated seconds a job submitted *now* by `tenant` would wait
    /// before batching: the tenant's lane depth over its weighted share of
    /// the recent drain rate. `None` while the queue is empty for that
    /// tenant or no drain rate has been measured yet (an idle or cold
    /// server admits optimistically).
    pub fn estimated_wait(&self, tenant: TenantId) -> Option<f64> {
        let inner = lock_recover(&self.inner);
        if inner.drain_rate <= 0.0 {
            return None;
        }
        let depth = inner.lanes[tenant.index()].jobs.len();
        if depth == 0 {
            return None;
        }
        // The lane drains at its smooth-WRR share of the overall rate:
        // weight over the total backlogged weight (counting this lane).
        let backlogged: i64 = inner
            .lanes
            .iter()
            .filter(|l| !l.jobs.is_empty())
            .map(|l| l.weight)
            .sum();
        let share = inner.lanes[tenant.index()].weight as f64 / backlogged.max(1) as f64;
        Some(depth as f64 / (inner.drain_rate * share))
    }

    /// Backoff hint in whole seconds for a rejected submission: the
    /// estimated time for the tenant's lane to drain, clamped to
    /// `[1, 60]`. Always at least one second — `Retry-After: 0` is a
    /// useless hint under flood.
    pub fn retry_after_secs(&self, tenant: TenantId) -> u64 {
        let wait = self.estimated_wait(tenant).unwrap_or(0.0);
        (wait.ceil() as u64).clamp(1, 60)
    }

    /// Marks the queue closed and wakes every waiter.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.not_empty.notify_all();
    }

    /// Requests currently waiting, summed over all tenants.
    pub fn depth(&self) -> usize {
        lock_recover(&self.inner).total_depth
    }

    pub fn stats(&self) -> QueueStats {
        let inner = lock_recover(&self.inner);
        let tenants: Vec<TenantQueueStats> = inner
            .lanes
            .iter()
            .map(|lane| TenantQueueStats {
                admitted: lane.admitted,
                rejected: lane.rejected,
                peak_depth: lane.peak_depth,
            })
            .collect();
        QueueStats {
            admitted: tenants.iter().map(|t| t.admitted).sum(),
            rejected: tenants.iter().map(|t| t.rejected).sum(),
            peak_depth: inner.peak_total_depth,
            tenants,
        }
    }
}

impl Inner {
    /// Smooth-WRR drain of up to `max` jobs across backlogged lanes.
    fn drain(&mut self, max: usize) -> Vec<Job> {
        let mut out = Vec::with_capacity(max.min(self.total_depth));
        while out.len() < max && self.total_depth > 0 {
            let mut backlogged_weight = 0i64;
            let mut pick = usize::MAX;
            let mut best = i64::MIN;
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                if lane.jobs.is_empty() {
                    continue;
                }
                backlogged_weight += lane.weight;
                lane.credit += lane.weight;
                if lane.credit > best {
                    best = lane.credit;
                    pick = i;
                }
            }
            let lane = &mut self.lanes[pick];
            lane.credit -= backlogged_weight;
            out.push(lane.jobs.pop_front().expect("picked lane is backlogged"));
            self.total_depth -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;
    use vlite_sim::SimTime;

    fn spec(weight: u32, capacity: usize) -> TenantSpec {
        TenantSpec {
            weight,
            queue_capacity: capacity,
            slo_search: 0.05,
        }
    }

    fn job(tenant: u16, id: u64) -> Job {
        let (reply, _rx) = channel::unbounded();
        Job {
            id,
            tenant: TenantId(tenant),
            query: vec![0.0],
            enqueued: SimTime::ZERO,
            deadline: None,
            trace: crate::trace::TraceId(1),
            reply,
        }
    }

    fn single(capacity: usize) -> AdmissionQueue {
        AdmissionQueue::new(&[spec(1, capacity)])
    }

    #[test]
    fn rejects_beyond_capacity_and_counts() {
        let q = single(2);
        assert!(q.try_push(job(0, 0)).is_ok());
        assert!(q.try_push(job(0, 1)).is_ok());
        let err = q.try_push(job(0, 2)).unwrap_err();
        assert!(!err.1, "full, not closed");
        let stats = q.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.peak_depth, 2);
    }

    #[test]
    fn take_batch_absorbs_everything_up_to_max() {
        let q = single(16);
        for id in 0..5 {
            q.try_push(job(0, id)).unwrap();
        }
        let batch = q.take_batch(64).expect("work queued");
        assert_eq!(batch.len(), 5);
        assert_eq!(
            batch.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn take_batch_respects_max() {
        let q = single(16);
        for id in 0..5 {
            q.try_push(job(0, id)).unwrap();
        }
        assert_eq!(q.take_batch(3).unwrap().len(), 3);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_backlog_then_ends() {
        let q = single(16);
        q.try_push(job(0, 0)).unwrap();
        q.close();
        assert!(
            q.try_push(job(0, 1)).is_err(),
            "closed queue admits nothing"
        );
        assert_eq!(q.take_batch(8).unwrap().len(), 1);
        assert!(q.take_batch(8).is_none());
    }

    #[test]
    fn blocked_taker_wakes_on_push() {
        let q = std::sync::Arc::new(single(4));
        let q2 = q.clone();
        let taker = std::thread::spawn(move || q2.take_batch(8).map(|b| b.len()));
        // vlite-allow(clock-discipline): real-thread rendezvous in a test of
        // real blocking; no timestamps are recorded against any clock.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(job(0, 7)).unwrap();
        assert_eq!(taker.join().unwrap(), Some(1));
    }

    #[test]
    fn over_quota_tenant_rejections_never_evict_other_tenants() {
        let q = AdmissionQueue::new(&[spec(1, 4), spec(1, 2)]);
        for id in 0..4 {
            q.try_push(job(0, id)).unwrap();
        }
        // Tenant 1 floods ten submissions into a two-slot lane.
        let mut rejected = 0;
        for id in 100..110 {
            if q.try_push(job(1, id)).is_err() {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 8);
        let stats = q.stats();
        assert_eq!(stats.tenants[0].rejected, 0, "victim tenant charged");
        assert_eq!(stats.tenants[1].rejected, 8);
        assert_eq!(stats.tenants[0].admitted, 4);
        assert_eq!(stats.tenants[1].admitted, 2);
        // Every one of tenant 0's queued jobs is still there, in order.
        let drained = q.take_batch(64).unwrap();
        let t0: Vec<u64> = drained
            .iter()
            .filter(|j| j.tenant == TenantId(0))
            .map(|j| j.id)
            .collect();
        assert_eq!(t0, vec![0, 1, 2, 3]);
        let t1: Vec<u64> = drained
            .iter()
            .filter(|j| j.tenant == TenantId(1))
            .map(|j| j.id)
            .collect();
        assert_eq!(t1, vec![100, 101]);
    }

    #[test]
    fn weighted_shares_converge_under_sustained_backlog() {
        // Property-style: tenants at weights 1:4, both kept backlogged
        // across many take_batch calls. The drained mix must converge to
        // the 1:4 share and the light tenant must never starve.
        let q = AdmissionQueue::new(&[spec(1, 64), spec(4, 64)]);
        let mut next_id = [0u64, 0u64];
        let mut drained = [0u64, 0u64];
        let mut picks: Vec<u16> = Vec::new();
        for _ in 0..200 {
            // Top both lanes up so backlog is sustained through the drain.
            for t in 0..2u16 {
                while q
                    .try_push(job(t, {
                        let id = next_id[t as usize];
                        next_id[t as usize] += 1;
                        id
                    }))
                    .is_ok()
                {}
            }
            for j in q.take_batch(10).expect("backlogged") {
                drained[j.tenant.index()] += 1;
                picks.push(j.tenant.0);
            }
        }
        let total = (drained[0] + drained[1]) as f64;
        let heavy_share = drained[1] as f64 / total;
        assert!(
            (heavy_share - 0.8).abs() < 0.02,
            "weight-4 tenant took {heavy_share:.3} of the drain, want 0.8"
        );
        assert!(drained[0] > 0, "light tenant starved");
        // No starvation at fine grain either: every window of 10
        // consecutive picks contains the light tenant.
        for window in picks.chunks(10) {
            if window.len() == 10 {
                assert!(
                    window.contains(&0),
                    "light tenant absent from a 10-pick window"
                );
            }
        }
    }

    #[test]
    fn three_way_weights_split_proportionally() {
        let q = AdmissionQueue::new(&[spec(1, 32), spec(2, 32), spec(3, 32)]);
        let mut drained = [0u64; 3];
        for _ in 0..300 {
            for t in 0..3u16 {
                while q.try_push(job(t, 0)).is_ok() {}
            }
            for j in q.take_batch(6).expect("backlogged") {
                drained[j.tenant.index()] += 1;
            }
        }
        let total: u64 = drained.iter().sum();
        for (t, &want) in [1.0 / 6.0, 2.0 / 6.0, 3.0 / 6.0].iter().enumerate() {
            let share = drained[t] as f64 / total as f64;
            assert!(
                (share - want).abs() < 0.02,
                "tenant {t} share {share:.3}, want {want:.3}"
            );
        }
    }

    #[test]
    fn lone_backlogged_tenant_takes_the_whole_batch() {
        // Work conservation: weights cap a tenant's share only while other
        // tenants have queued work.
        let q = AdmissionQueue::new(&[spec(1, 32), spec(4, 32)]);
        for id in 0..8 {
            q.try_push(job(0, id)).unwrap();
        }
        let batch = q.take_batch(8).unwrap();
        assert_eq!(batch.len(), 8);
        assert!(batch.iter().all(|j| j.tenant == TenantId(0)));
    }

    #[test]
    fn drain_rate_estimates_wait_and_retry_after() {
        let q = single(64);
        // No drain history: optimistic (no estimate), Retry-After floors
        // at 1s.
        assert_eq!(q.estimated_wait(TenantId(0)), None);
        assert_eq!(q.retry_after_secs(TenantId(0)), 1);
        // Two drains of 10 jobs, 1s apart → 10 jobs/sec exactly (the
        // first call only seeds the timestamp).
        q.record_drain(10, SimTime::from_secs_f64(1.0));
        q.record_drain(10, SimTime::from_secs_f64(2.0));
        assert!((q.drain_rate() - 10.0).abs() < 1e-9);
        for id in 0..30 {
            q.try_push(job(0, id)).unwrap();
        }
        // 30 queued at 10/sec → 3s estimated wait, Retry-After 3.
        let wait = q.estimated_wait(TenantId(0)).expect("rate measured");
        assert!((wait - 3.0).abs() < 1e-9, "wait {wait}");
        assert_eq!(q.retry_after_secs(TenantId(0)), 3);
    }

    #[test]
    fn estimated_wait_respects_weighted_share() {
        // Equal backlogs, weights 1:3 → the light tenant drains at 1/4 of
        // the rate and waits 3x longer than the heavy one.
        let q = AdmissionQueue::new(&[spec(1, 64), spec(3, 64)]);
        q.record_drain(8, SimTime::from_secs_f64(1.0));
        q.record_drain(8, SimTime::from_secs_f64(2.0));
        for id in 0..8 {
            q.try_push(job(0, id)).unwrap();
            q.try_push(job(1, id)).unwrap();
        }
        let light = q.estimated_wait(TenantId(0)).unwrap();
        let heavy = q.estimated_wait(TenantId(1)).unwrap();
        assert!((light / heavy - 3.0).abs() < 1e-9, "{light} vs {heavy}");
    }

    #[test]
    fn retry_after_saturated_lane_is_at_least_one() {
        let q = single(4);
        for id in 0..4 {
            q.try_push(job(0, id)).unwrap();
        }
        assert!(q.try_push(job(0, 99)).is_err(), "lane saturated");
        assert!(q.retry_after_secs(TenantId(0)) >= 1);
    }

    #[test]
    fn idle_tenant_banks_no_credit() {
        // Tenant 0 is idle for a long stretch while tenant 1 drains; when
        // tenant 0 returns it must get its fair share, not a makeup burst.
        let q = AdmissionQueue::new(&[spec(1, 128), spec(1, 128)]);
        for id in 0..100 {
            q.try_push(job(1, id)).unwrap();
        }
        for _ in 0..10 {
            q.take_batch(10).unwrap();
        }
        for id in 0..20 {
            q.try_push(job(0, id)).unwrap();
            q.try_push(job(1, 1000 + id)).unwrap();
        }
        let batch = q.take_batch(20).unwrap();
        let t0 = batch.iter().filter(|j| j.tenant == TenantId(0)).count();
        assert_eq!(t0, 10, "equal weights split a contested batch evenly");
    }
}
