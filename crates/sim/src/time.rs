//! Virtual time newtypes.
//!
//! Integer nanoseconds keep the event queue ordering exact: two events
//! scheduled from the same f64 arithmetic always compare identically across
//! runs and platforms, which floating-point timestamps do not guarantee.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A span of virtual time, in integer nanoseconds.
///
/// # Examples
///
/// ```
/// use vlite_sim::SimDuration;
///
/// let d = SimDuration::from_millis(1.5);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// assert!((d.as_secs_f64() - 0.0015).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite. Cost models occasionally
    /// produce tiny negative values from catastrophic cancellation; callers
    /// should clamp with `f64::max(0.0)` when that is expected.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and >= 0, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration as integer nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration as a `std::time::Duration` (exact: both are integer
    /// nanoseconds).
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be >= 0, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 1.0 {
            write!(f, "{secs:.3}s")
        } else if secs >= 1e-3 {
            write!(f, "{:.3}ms", secs * 1e3)
        } else {
            write!(f, "{:.0}µs", secs * 1e6)
        }
    }
}

/// An instant of virtual time, in integer nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use vlite_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(10.0);
/// assert_eq!(t.duration_since(SimTime::ZERO), SimDuration::from_millis(10.0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from fractional seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is
    /// later than `self`.
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        let d = SimDuration::from_secs_f64(0.123_456_789);
        assert_eq!(d.as_nanos(), 123_456_789);
        assert!((d.as_secs_f64() - 0.123_456_789).abs() < 1e-12);
    }

    #[test]
    fn micros_and_millis_agree() {
        assert_eq!(
            SimDuration::from_micros(1500),
            SimDuration::from_millis(1.5)
        );
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_secs_f64(1.0);
        let t1 = t0 + SimDuration::from_millis(250.0);
        assert_eq!((t1 - t0).as_secs_f64(), 0.25);
        // Saturating: earlier - later == 0
        assert_eq!(t0 - t1, SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(11);
        assert!(a < b);
        assert_eq!(a, SimTime::from_nanos(10));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10.0).mul_f64(2.5);
        assert_eq!(d, SimDuration::from_millis(25.0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_duration_rejected() {
        SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(12.0)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs_f64(2.5)), "2.500s");
    }
}
