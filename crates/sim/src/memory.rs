//! Per-GPU memory accounting.
//!
//! VectorLiteRAG's central trade-off is *capacity*: bytes granted to the
//! vector-index shard are bytes taken from the LLM's KV cache (paper Fig. 4
//! right, Table II). [`MemoryLedger`] tracks named regions per device so the
//! partitioner and the serving simulator agree on exactly how much KV space
//! survives a given partitioning point ρ.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The purpose of a reserved region of GPU memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryRegion {
    /// Model parameters (this GPU's tensor-parallel slice).
    Params,
    /// Paged KV cache pool.
    KvCache,
    /// Resident vector-index shard (hot clusters).
    IndexShard,
    /// Scratch: activation workspace, LUT staging, CUDA context overhead.
    Workspace,
}

impl MemoryRegion {
    /// All regions, in ledger-display order.
    pub const ALL: [MemoryRegion; 4] = [
        MemoryRegion::Params,
        MemoryRegion::KvCache,
        MemoryRegion::IndexShard,
        MemoryRegion::Workspace,
    ];
}

impl fmt::Display for MemoryRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryRegion::Params => "params",
            MemoryRegion::KvCache => "kv-cache",
            MemoryRegion::IndexShard => "index-shard",
            MemoryRegion::Workspace => "workspace",
        };
        f.write_str(s)
    }
}

/// Error returned when a reservation exceeds remaining capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still free.
    pub available: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device memory exhausted: requested {} bytes, {} bytes available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Byte-exact accounting of one device's memory.
///
/// # Examples
///
/// ```
/// use vlite_sim::{MemoryLedger, MemoryRegion};
///
/// let mut ledger = MemoryLedger::new(1 << 30);
/// ledger.reserve(MemoryRegion::Params, 512 << 20)?;
/// assert_eq!(ledger.free(), 512 << 20);
/// ledger.release(MemoryRegion::Params, 512 << 20);
/// assert_eq!(ledger.free(), 1 << 30);
/// # Ok::<(), vlite_sim::OutOfMemory>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLedger {
    capacity: u64,
    used: [u64; 4],
}

impl MemoryLedger {
    /// Creates a ledger for a device with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: [0; 4],
        }
    }

    fn idx(region: MemoryRegion) -> usize {
        match region {
            MemoryRegion::Params => 0,
            MemoryRegion::KvCache => 1,
            MemoryRegion::IndexShard => 2,
            MemoryRegion::Workspace => 3,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved across all regions.
    pub fn used(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Bytes not reserved by any region.
    pub fn free(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Bytes reserved by one region.
    pub fn region(&self, region: MemoryRegion) -> u64 {
        self.used[Self::idx(region)]
    }

    /// Reserves `bytes` for `region`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if fewer than `bytes` are free; the ledger is
    /// unchanged in that case.
    pub fn reserve(&mut self, region: MemoryRegion, bytes: u64) -> Result<(), OutOfMemory> {
        if bytes > self.free() {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.free(),
            });
        }
        self.used[Self::idx(region)] += bytes;
        Ok(())
    }

    /// Releases `bytes` from `region`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the region's current reservation — freeing
    /// memory that was never reserved is always an accounting bug.
    pub fn release(&mut self, region: MemoryRegion, bytes: u64) {
        let idx = Self::idx(region);
        assert!(
            bytes <= self.used[idx],
            "releasing {bytes} bytes from {region} which holds only {}",
            self.used[idx]
        );
        self.used[idx] -= bytes;
    }

    /// Reserves as much of `bytes` as fits, returning the granted amount.
    pub fn reserve_up_to(&mut self, region: MemoryRegion, bytes: u64) -> u64 {
        let grant = bytes.min(self.free());
        self.used[Self::idx(region)] += grant;
        grant
    }
}

impl fmt::Display for MemoryLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
        write!(
            f,
            "{:.1}/{:.1} GiB used (",
            gib(self.used()),
            gib(self.capacity)
        )?;
        for (i, region) in MemoryRegion::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={:.1}", region, gib(self.region(*region)))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_round_trip() {
        let mut m = MemoryLedger::new(100);
        m.reserve(MemoryRegion::KvCache, 60).unwrap();
        m.reserve(MemoryRegion::IndexShard, 30).unwrap();
        assert_eq!(m.free(), 10);
        m.release(MemoryRegion::KvCache, 60);
        assert_eq!(m.free(), 70);
        assert_eq!(m.region(MemoryRegion::IndexShard), 30);
    }

    #[test]
    fn oversubscription_fails_without_mutation() {
        let mut m = MemoryLedger::new(100);
        m.reserve(MemoryRegion::Params, 90).unwrap();
        let err = m.reserve(MemoryRegion::KvCache, 20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.available, 10);
        assert_eq!(m.used(), 90);
    }

    #[test]
    fn reserve_up_to_clamps() {
        let mut m = MemoryLedger::new(100);
        m.reserve(MemoryRegion::Params, 70).unwrap();
        let granted = m.reserve_up_to(MemoryRegion::KvCache, 50);
        assert_eq!(granted, 30);
        assert_eq!(m.free(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut m = MemoryLedger::new(100);
        m.release(MemoryRegion::Params, 1);
    }

    #[test]
    fn display_lists_all_regions() {
        let m = MemoryLedger::new(1 << 30);
        let text = format!("{m}");
        for region in ["params", "kv-cache", "index-shard", "workspace"] {
            assert!(text.contains(region), "missing {region} in {text}");
        }
    }
}
