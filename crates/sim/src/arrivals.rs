//! Request arrival processes.

use rand::Rng;

use crate::{SimDuration, SimTime};

/// A homogeneous Poisson arrival process.
///
/// The paper models request arrivals as Poisson (§V-A), "a commonly adopted
/// modeling choice in prior work". Inter-arrival gaps are exponential with
/// mean `1/rate`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut arrivals = vlite_sim::PoissonProcess::new(100.0);
/// let times = arrivals.take(&mut rng, 1000);
/// assert_eq!(times.len(), 1000);
/// // Mean inter-arrival ≈ 10ms at 100 req/s.
/// let span = times.last().unwrap().as_secs_f64();
/// assert!(span > 5.0 && span < 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    now: SimTime,
}

impl PoissonProcess {
    /// Creates a process with the given arrival rate in events per second,
    /// starting at the simulation epoch.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        Self {
            rate,
            now: SimTime::ZERO,
        }
    }

    /// Arrival rate in events per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws the next arrival instant.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> SimTime {
        // Inverse-CDF sampling of Exp(rate); 1-u avoids ln(0).
        let u: f64 = rng.random();
        let gap = -(1.0 - u).ln() / self.rate;
        self.now += SimDuration::from_secs_f64(gap);
        self.now
    }

    /// Draws the next `n` arrival instants.
    pub fn take<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next_arrival(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_strictly_ordered() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = PoissonProcess::new(50.0);
        let times = p.take(&mut rng, 500);
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn mean_rate_close_to_nominal() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut p = PoissonProcess::new(200.0);
        let n = 20_000;
        let times = p.take(&mut rng, n);
        let observed_rate = n as f64 / times.last().unwrap().as_secs_f64();
        assert!(
            (observed_rate - 200.0).abs() < 10.0,
            "observed rate {observed_rate} too far from 200"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            PoissonProcess::new(10.0).take(&mut rng, 100)
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_rate_rejected() {
        PoissonProcess::new(0.0);
    }
}
