//! Timestamped event queue with deterministic tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs, popping earliest-first.
///
/// Events scheduled for the same instant pop in insertion (FIFO) order —
/// this makes multi-component simulations reproducible regardless of heap
/// internals.
///
/// # Examples
///
/// ```
/// use vlite_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_secs_f64(1.0);
/// q.schedule(t, "first");
/// q.schedule(t, "second");
/// assert_eq!(q.pop(), Some((t, "first")));
/// assert_eq!(q.pop(), Some((t, "second")));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs_f64(3.0), 3u32);
        q.schedule(SimTime::from_secs_f64(1.0), 1);
        q.schedule(SimTime::from_secs_f64(2.0), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(5.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_millis(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(0.001)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }
}
