//! Discrete-event simulation substrate for the VectorLiteRAG reproduction.
//!
//! The paper evaluates on 8×H100 / 8×L40S nodes; this environment has
//! neither. Per the reproduction's substitution rule (see `DESIGN.md` §2),
//! serving-level experiments run in *virtual time* over this substrate:
//!
//! - [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time
//!   newtypes; integer representation keeps event ordering deterministic.
//! - [`EventQueue`] — a generic priority queue of timestamped events with
//!   stable FIFO ordering among simultaneous events.
//! - [`GpuSpec`], [`CpuSpec`], [`devices`] — hardware catalog mirroring the
//!   paper's testbed (H100, L40S, Xeon 8462Y/6426Y).
//! - [`MemoryLedger`] — per-GPU memory accounting (model parameters, KV
//!   cache, vector-index shard) that drives the capacity side of the
//!   retrieval/inference contention model.
//! - [`PoissonProcess`] — the arrival process used throughout the paper's
//!   evaluation.
//!
//! # Examples
//!
//! ```
//! use vlite_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5.0), "b");
//! q.schedule(SimTime::ZERO, "a");
//! assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
//! assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrivals;
mod event;
mod hardware;
mod memory;
mod time;

pub use arrivals::PoissonProcess;
pub use event::EventQueue;
pub use hardware::{devices, CpuSpec, GpuSpec};
pub use memory::{MemoryLedger, MemoryRegion, OutOfMemory};
pub use time::{SimDuration, SimTime};
