//! Hardware catalog mirroring the paper's testbed.
//!
//! The paper's two nodes (§V-A "System Configuration"):
//!
//! - **L40S node** — 8× NVIDIA L40S (48 GB GDDR6) + dual Xeon Gold 6426Y
//!   (32 cores total); used for Llama3-8B.
//! - **H100 node** — 8× NVIDIA H100 (80 GB HBM3) + Xeon Platinum 8462Y+
//!   (64 cores); used for Qwen3-32B and Llama3-70B.
//!
//! The numeric specs below are public datasheet values; the serving cost
//! models consume only bandwidth, compute-rate and capacity ratios, so small
//! datasheet deviations do not change who-wins/crossover shapes.

use serde::{Deserialize, Serialize};

/// Static description of a GPU device.
///
/// # Examples
///
/// ```
/// let h100 = vlite_sim::devices::h100();
/// assert_eq!(h100.mem_bytes, 80 * (1 << 30));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"H100-SXM"`.
    pub name: String,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Device memory bandwidth in bytes per second.
    pub mem_bw: f64,
    /// Dense FP16/BF16 tensor throughput in FLOP/s.
    pub fp16_flops: f64,
    /// Number of streaming multiprocessors (kernel-scheduling granularity
    /// for the retrieval-occupancy contention model).
    pub sms: u32,
    /// Host-to-device transfer bandwidth in bytes per second (PCIe),
    /// used for index-shard loading time (Fig. 9).
    pub h2d_bw: f64,
}

impl GpuSpec {
    /// Memory capacity in GiB.
    pub fn mem_gib(&self) -> f64 {
        self.mem_bytes as f64 / (1u64 << 30) as f64
    }
}

/// Static description of a host CPU (one NUMA node / socket pair treated as
/// a uniform pool, as the paper does).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name, e.g. `"Xeon-8462Y"`.
    pub name: String,
    /// Physical core count available to the retriever.
    pub cores: u32,
    /// f32 lanes per SIMD vector unit (AVX-512 ⇒ 16), the fast-scan
    /// parallelism factor.
    pub simd_lanes: u32,
    /// Sustained all-core frequency in Hz.
    pub freq_hz: f64,
    /// Aggregate memory bandwidth in bytes per second.
    pub mem_bw: f64,
}

impl CpuSpec {
    /// Returns a copy scaled to `cores`, with memory bandwidth scaled
    /// proportionally — the paper's Fig. 17 provisioning policy ("allocate
    /// additional CPU cores as more GPUs are added").
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_cores(&self, cores: u32) -> CpuSpec {
        assert!(cores > 0, "CPU must have at least one core");
        let scale = cores as f64 / self.cores as f64;
        CpuSpec {
            name: format!("{}-{}c", self.name, cores),
            cores,
            simd_lanes: self.simd_lanes,
            freq_hz: self.freq_hz,
            mem_bw: self.mem_bw * scale,
        }
    }
}

/// Constructors for the concrete devices in the paper's testbed.
pub mod devices {
    use super::*;

    /// NVIDIA H100 SXM5: 80 GB HBM3, 3.35 TB/s, 989 TFLOPS dense FP16,
    /// 132 SMs, PCIe Gen5 x16 host link.
    pub fn h100() -> GpuSpec {
        GpuSpec {
            name: "H100-SXM".to_string(),
            mem_bytes: 80 * (1u64 << 30),
            mem_bw: 3.35e12,
            fp16_flops: 989e12,
            sms: 132,
            h2d_bw: 64e9,
        }
    }

    /// NVIDIA L40S: 48 GB GDDR6, 864 GB/s, 362 TFLOPS dense FP16, 142 SMs,
    /// PCIe Gen4 x16 host link.
    pub fn l40s() -> GpuSpec {
        GpuSpec {
            name: "L40S".to_string(),
            mem_bytes: 48 * (1u64 << 30),
            mem_bw: 864e9,
            fp16_flops: 362e12,
            sms: 142,
            h2d_bw: 32e9,
        }
    }

    /// Dual Xeon Platinum 8462Y+ (64 cores, AVX-512, ~614 GB/s DDR5) —
    /// the H100 node's host CPU.
    pub fn xeon_8462y() -> CpuSpec {
        CpuSpec {
            name: "Xeon-8462Y".to_string(),
            cores: 64,
            simd_lanes: 16,
            freq_hz: 2.8e9,
            mem_bw: 614e9,
        }
    }

    /// Dual Xeon Gold 6426Y (32 cores, AVX-512, ~307 GB/s DDR5) — the L40S
    /// node's host CPU.
    pub fn xeon_6426y() -> CpuSpec {
        CpuSpec {
            name: "Xeon-6426Y".to_string(),
            cores: 32,
            simd_lanes: 16,
            freq_hz: 2.5e9,
            mem_bw: 307e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::devices::*;

    #[test]
    fn h100_is_faster_and_larger_than_l40s() {
        let (h, l) = (h100(), l40s());
        assert!(h.mem_bytes > l.mem_bytes);
        assert!(h.mem_bw > l.mem_bw);
        assert!(h.fp16_flops > l.fp16_flops);
    }

    #[test]
    fn mem_gib_matches_bytes() {
        assert_eq!(h100().mem_gib(), 80.0);
        assert_eq!(l40s().mem_gib(), 48.0);
    }

    #[test]
    fn cpu_core_scaling_scales_bandwidth() {
        let full = xeon_8462y();
        let half = full.with_cores(32);
        assert_eq!(half.cores, 32);
        assert!((half.mem_bw - full.mem_bw / 2.0).abs() < 1.0);
        assert_eq!(half.simd_lanes, full.simd_lanes);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_cpu_rejected() {
        xeon_8462y().with_cores(0);
    }
}
