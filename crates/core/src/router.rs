//! Query router (§IV-B1).
//!
//! After coarse quantization, the router splits each query's probe list by
//! the mapping tables: probes of GPU-resident clusters go to exactly the
//! shard holding them (with remapped local ids), the rest stay on the CPU.
//! Unlike Faiss's `IndexIVFShards` — which sends the *full* probe list to
//! every shard and launches kernels even for non-resident clusters — the
//! router prunes, so per-shard `nprobe` shrinks and GPU scheduling pressure
//! drops.

use crate::{IndexSplit, Placement};

/// A query's probe list after routing.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedQuery {
    /// Per-shard probe lists, as shard-local cluster ids.
    pub shard_probes: Vec<Vec<u32>>,
    /// Per-shard probe lists, as global cluster ids (same order as
    /// `shard_probes`; kept for accounting and result attribution).
    pub shard_probes_global: Vec<Vec<u32>>,
    /// Probes served by the CPU (global cluster ids).
    pub cpu_probes: Vec<u32>,
}

impl RoutedQuery {
    /// Number of probes that hit GPU-resident clusters.
    pub fn gpu_probe_count(&self) -> usize {
        self.shard_probes.iter().map(Vec::len).sum()
    }

    /// Total probes (GPU + CPU) — conserved from the input list.
    pub fn total_probes(&self) -> usize {
        self.gpu_probe_count() + self.cpu_probes.len()
    }

    /// The query's hit rate against the cache: GPU probes / total probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.total_probes();
        if total == 0 {
            0.0
        } else {
            self.gpu_probe_count() as f64 / total as f64
        }
    }
}

/// Routes probe lists through an [`IndexSplit`]'s mapping tables.
///
/// # Examples
///
/// ```
/// use vlite_core::{AccessProfile, IndexSplit, Router};
/// use vlite_workload::DatasetPreset;
///
/// let preset = DatasetPreset::tiny();
/// let wl = preset.workload(13);
/// let profile = AccessProfile::from_workload(&preset, &wl, 1_000, 13);
/// let split = IndexSplit::build(&profile, 0.2, 2);
/// let router = Router::new(split);
/// let routed = router.route(&[0, 1, 2, 3]);
/// assert_eq!(routed.total_probes(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Router {
    split: IndexSplit,
}

impl Router {
    /// Creates a router over a built split.
    pub fn new(split: IndexSplit) -> Self {
        Self { split }
    }

    /// The underlying split.
    pub fn split(&self) -> &IndexSplit {
        &self.split
    }

    /// Replaces the split (used by the adaptive runtime update when a
    /// refreshed shard set is loaded).
    pub fn install_split(&mut self, split: IndexSplit) {
        self.split = split;
    }

    /// Routes one query's probe list.
    pub fn route(&self, probes: &[u32]) -> RoutedQuery {
        let n_shards = self.split.n_shards();
        let mut shard_probes: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        let mut shard_probes_global: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        let mut cpu_probes = Vec::new();
        for &cluster in probes {
            match self.split.placement(cluster) {
                Placement::Cpu => cpu_probes.push(cluster),
                Placement::Gpu { shard, local } => {
                    shard_probes[usize::from(shard)].push(local);
                    shard_probes_global[usize::from(shard)].push(cluster);
                }
            }
        }
        RoutedQuery {
            shard_probes,
            shard_probes_global,
            cpu_probes,
        }
    }

    /// Routes a batch of probe lists.
    pub fn route_batch(&self, batch: &[Vec<u32>]) -> Vec<RoutedQuery> {
        batch.iter().map(|probes| self.route(probes)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessProfile;
    use vlite_workload::DatasetPreset;

    fn router(coverage: f64, shards: usize) -> (Router, AccessProfile) {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(13);
        let profile = AccessProfile::from_workload(&preset, &wl, 2000, 13);
        let split = IndexSplit::build(&profile, coverage, shards);
        (Router::new(split), profile)
    }

    #[test]
    fn probes_are_conserved_exactly_once() {
        let (router, profile) = router(0.25, 4);
        let probes: Vec<u32> = (0..profile.nlist() as u32).step_by(3).collect();
        let routed = router.route(&probes);
        assert_eq!(routed.total_probes(), probes.len());
        // Global ids across CPU + shards reproduce the input as a set.
        let mut all: Vec<u32> = routed.cpu_probes.clone();
        for list in &routed.shard_probes_global {
            all.extend(list);
        }
        all.sort_unstable();
        let mut expected = probes.clone();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn local_ids_resolve_back_to_global() {
        let (router, profile) = router(0.3, 3);
        let probes: Vec<u32> = (0..profile.nlist() as u32).collect();
        let routed = router.route(&probes);
        for (shard, (locals, globals)) in routed
            .shard_probes
            .iter()
            .zip(&routed.shard_probes_global)
            .enumerate()
        {
            for (&local, &global) in locals.iter().zip(globals) {
                assert_eq!(router.split().shard_clusters(shard)[local as usize], global);
            }
        }
    }

    #[test]
    fn zero_coverage_routes_everything_to_cpu() {
        let (router, _) = router(0.0, 2);
        let routed = router.route(&[1, 2, 3]);
        assert_eq!(routed.cpu_probes, vec![1, 2, 3]);
        assert_eq!(routed.gpu_probe_count(), 0);
        assert_eq!(routed.hit_rate(), 0.0);
    }

    #[test]
    fn full_coverage_routes_everything_to_gpus() {
        let (router, profile) = router(1.0, 2);
        let probes: Vec<u32> = (0..profile.nlist() as u32).step_by(7).collect();
        let routed = router.route(&probes);
        assert!(routed.cpu_probes.is_empty());
        assert_eq!(routed.hit_rate(), 1.0);
    }

    #[test]
    fn pruning_reduces_per_shard_probe_counts() {
        // The router's whole point: each shard sees only its own clusters,
        // so per-shard nprobe ≪ total nprobe.
        let (router, profile) = router(0.4, 4);
        let probes: Vec<u32> = (0..profile.nlist() as u32).collect();
        let routed = router.route(&probes);
        for list in &routed.shard_probes {
            assert!(list.len() < probes.len() / 2, "shard probe list not pruned");
        }
    }

    #[test]
    fn empty_probe_list_routes_empty() {
        let (router, _) = router(0.2, 2);
        let routed = router.route(&[]);
        assert_eq!(routed.total_probes(), 0);
        assert_eq!(routed.hit_rate(), 0.0);
    }
}
