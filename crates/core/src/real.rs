//! Real-tier deployment: the VectorLiteRAG *offline* stage over an actual
//! [`IvfIndex`] (no cost models): train, profile access patterns with
//! calibration queries, fit the latency model from wall-clock measurements,
//! run Algorithm 1, and build the split + router.
//!
//! The *runtime* side — shard workers, CPU scan pool, threaded dynamic
//! dispatcher (§IV-B2) and the online control loop — lives in the
//! `vlite-serve` crate, which consumes a [`RealDeployment`] as its offline
//! artifact. This module is deliberately a thin client: everything needed
//! to serve (index, router, perf model, estimator, decision) is exposed as
//! public state.

use std::time::Instant;

use vlite_ann::{IvfConfig, IvfIndex, Neighbor};
use vlite_store::{StoreError, TieredStore};
use vlite_workload::SyntheticCorpus;

use crate::{
    partition, AccessProfile, HitRateEstimator, IndexSplit, PartitionDecision, PartitionInput,
    PerfModel, Router,
};

/// Configuration for a real-tier deployment.
#[derive(Debug, Clone)]
pub struct RealConfig {
    /// IVF configuration for the index.
    pub ivf: IvfConfig,
    /// Probes per query.
    pub nprobe: usize,
    /// Results per query.
    pub top_k: usize,
    /// Calibration queries for profiling.
    pub n_profile_queries: usize,
    /// Search-stage SLO in seconds.
    pub slo_search: f64,
    /// Bare LLM throughput assumed by the partitioner (requests/s).
    pub mu_llm0: f64,
    /// KV bytes available with no index resident.
    pub kv_bytes_full: u64,
    /// Number of shard workers ("GPUs").
    pub n_shards: usize,
    /// RNG seed.
    pub seed: u64,
    /// Pins the split's cache coverage ρ instead of Algorithm 1's decision
    /// (the paper's fixed-ρ ablations, e.g. the Fig. 6 hit-rate violins).
    /// Algorithm 1 still runs and its decision is reported either way.
    pub coverage_override: Option<f64>,
}

impl RealConfig {
    /// Defaults suitable for the small synthetic corpora used in tests.
    pub fn small() -> Self {
        Self {
            ivf: IvfConfig::new(128),
            nprobe: 16,
            top_k: 10,
            n_profile_queries: 512,
            slo_search: 0.030,
            mu_llm0: 50.0,
            kv_bytes_full: 8 << 30,
            n_shards: 2,
            seed: 0x7ea1,
            coverage_override: None,
        }
    }
}

/// A deployment over a real index: profile, model, decision, split.
#[derive(Debug)]
pub struct RealDeployment {
    /// The trained IVF index.
    pub index: IvfIndex,
    /// Access profile measured by replaying calibration queries.
    pub profile: AccessProfile,
    /// Latency model fitted from wall-clock measurements.
    pub perf: PerfModel,
    /// Hit-rate estimator over the measured profile.
    pub estimator: HitRateEstimator,
    /// Partitioning decision.
    pub decision: PartitionDecision,
    /// Router over the built split.
    pub router: Router,
    /// The deployment configuration.
    pub config: RealConfig,
}

impl RealDeployment {
    /// Runs the full offline stage on a corpus: train the index, profile
    /// access patterns and latencies with real measurements, estimate,
    /// partition and split.
    ///
    /// # Errors
    ///
    /// Propagates index-training errors.
    pub fn build(corpus: &SyntheticCorpus, config: RealConfig) -> vlite_ann::Result<Self> {
        let index = IvfIndex::train(&corpus.vectors, &config.ivf)?;
        let calibration = corpus.queries(config.n_profile_queries, config.seed);

        // Access profiling: replay the coarse quantizer.
        let nlist = index.nlist();
        let mut counts = vec![0u64; nlist];
        let mut probe_sets = Vec::with_capacity(calibration.len());
        for q in calibration.iter() {
            let probes: Vec<u32> = index
                .probe(q, config.nprobe)
                .iter()
                .map(|p| p.list)
                .collect();
            for &c in &probes {
                counts[c as usize] += 1;
            }
            probe_sets.push(probes);
        }
        let sizes: Vec<u64> = (0..nlist).map(|l| index.list_len(l) as u64).collect();
        let bytes: Vec<u64> = (0..nlist).map(|l| index.list_bytes(l) as u64).collect();
        let profile = AccessProfile::from_parts(counts, sizes, bytes, probe_sets);

        // Latency profiling: wall-clock CQ and LUT timings per batch size.
        let mut samples = Vec::new();
        for &batch in &[1usize, 2, 4, 8, 16] {
            let reps = (32 / batch).max(2);
            let (mut t_cq, mut t_lut) = (0.0f64, 0.0f64);
            for rep in 0..reps {
                let start_q = (rep * batch) % calibration.len().saturating_sub(batch).max(1);
                // vlite-allow(clock-discipline): PerfModel calibration times
                // the real machine; virtualizing it would fit a fiction.
                let t0 = Instant::now();
                let mut probe_lists = Vec::with_capacity(batch);
                for i in 0..batch {
                    let q = calibration.get((start_q + i) % calibration.len());
                    probe_lists.push(index.probe(q, config.nprobe));
                }
                // vlite-allow(clock-discipline): same wall-clock calibration
                // split point as t0 above.
                let cq_done = Instant::now();
                for (i, probes) in probe_lists.iter().enumerate() {
                    let q = calibration.get((start_q + i) % calibration.len());
                    let lists: Vec<u32> = probes.iter().map(|p| p.list).collect();
                    let _ = index.scan_lists(q, &lists, config.top_k);
                }
                // vlite-allow(clock-discipline): same wall-clock calibration
                // split point as t0 above.
                let scan_done = Instant::now();
                t_cq += cq_done.duration_since(t0).as_secs_f64();
                t_lut += scan_done.duration_since(cq_done).as_secs_f64();
            }
            samples.push((batch as f64, t_cq / reps as f64, t_lut / reps as f64));
        }
        let perf = PerfModel::fit(&samples).expect("timing samples are finite");

        let estimator = HitRateEstimator::from_profile(&profile);
        let input = PartitionInput::new(config.slo_search, config.mu_llm0, config.kv_bytes_full);
        let decision = partition(&input, &perf, &estimator, &profile);
        let coverage = config.coverage_override.unwrap_or(decision.coverage);
        let split = IndexSplit::build(&profile, coverage, config.n_shards);
        let router = Router::new(split);
        Ok(Self {
            index,
            profile,
            perf,
            estimator,
            decision,
            router,
            config,
        })
    }

    /// Plain (non-hybrid) search, for ground-truthing the hybrid path.
    pub fn search_flat_path(&self, query: &[f32]) -> Vec<Neighbor> {
        self.index
            .search(query, self.config.top_k, self.config.nprobe)
    }

    /// Coarse-quantizes one query into its global probe list (the CPU's CQ
    /// stage the serving runtime performs before routing).
    pub fn probe_global(&self, query: &[f32]) -> Vec<u32> {
        self.index
            .probe(query, self.config.nprobe)
            .iter()
            .map(|p| p.list)
            .collect()
    }

    /// Builds (or reopens) a [`TieredStore`] at `segment_path` from this
    /// deployment, making the partitioner's placement physical: the
    /// router's hot clusters become resident full-precision arenas, the
    /// cold ones live in the segment's mmap'd SQ8 extents. The index's
    /// flat list payloads are *detached* into the store — after this call
    /// the deployment's bytes genuinely live where the placement says, and
    /// all scanning must go through
    /// [`IvfIndex::scan_lists_with`](vlite_ann::IvfIndex::scan_lists_with).
    ///
    /// If a segment file already exists at `segment_path` it is reopened
    /// and verified (per-cluster content checksums against the freshly
    /// trained index) instead of rewritten — the save → load → serve path.
    ///
    /// # Errors
    ///
    /// [`StoreError::Unsupported`] unless the index uses flat list storage
    /// and an SQ8-decomposable metric; any segment write/validation error.
    pub fn build_tiered_store(
        &mut self,
        segment_path: &std::path::Path,
    ) -> std::result::Result<TieredStore, StoreError> {
        // Every "unsupported" check must run BEFORE detaching the lists:
        // a gutted index whose store build then fails would silently
        // serve empty scans through the fallback path.
        if !vlite_store::supports_metric(self.config.ivf.metric) {
            return Err(StoreError::Unsupported(format!(
                "tiered storage cannot score under {:?} (not SQ8-decomposable)",
                self.config.ivf.metric
            )));
        }
        let Some(lists) = self.index.take_flat_lists() else {
            return Err(StoreError::Unsupported(
                "tiered storage requires flat (full-precision) list storage".into(),
            ));
        };
        let hot: Vec<bool> = (0..self.index.nlist() as u32)
            .map(|c| self.router.split().is_hot(c))
            .collect();
        TieredStore::create_or_open(
            segment_path,
            self.index.dim(),
            self.config.ivf.metric,
            &lists,
            &hot,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_workload::CorpusConfig;

    fn deployment() -> RealDeployment {
        let corpus = SyntheticCorpus::generate(&CorpusConfig {
            n_vectors: 6000,
            dim: 16,
            n_centers: 32,
            zipf_exponent: 1.2,
            noise: 0.25,
            seed: 9,
        });
        RealDeployment::build(&corpus, RealConfig::small()).expect("build succeeds")
    }

    #[test]
    fn profile_reflects_real_skew() {
        let d = deployment();
        // Zipf-weighted topics ⇒ skewed cluster accesses on a real index.
        let top20 = d.profile.mean_hit_rate(0.2);
        assert!(
            top20 > 0.3,
            "real access skew too weak: top-20% covers {top20}"
        );
    }

    #[test]
    fn probe_global_matches_index_probe() {
        let d = deployment();
        let corpus = SyntheticCorpus::generate(&CorpusConfig {
            n_vectors: 6000,
            dim: 16,
            n_centers: 32,
            zipf_exponent: 1.2,
            noise: 0.25,
            seed: 9,
        });
        let queries = corpus.queries(4, 77);
        for q in queries.iter() {
            let direct: Vec<u32> = d
                .index
                .probe(q, d.config.nprobe)
                .iter()
                .map(|p| p.list)
                .collect();
            assert_eq!(d.probe_global(q), direct);
        }
    }

    #[test]
    fn decision_is_well_formed_on_real_measurements() {
        let d = deployment();
        assert!((0.0..=1.0).contains(&d.decision.coverage));
        assert!(d.decision.index_bytes <= d.profile.total_bytes());
        assert!(d.decision.expected_batch >= 1);
    }

    #[test]
    fn unsupported_metric_leaves_the_index_intact() {
        // Regression: the cosine check must run before the lists are
        // detached — a failed store build on a gutted index would make
        // every subsequent scan silently return nothing.
        let corpus = SyntheticCorpus::generate(&CorpusConfig {
            n_vectors: 2000,
            dim: 8,
            n_centers: 16,
            zipf_exponent: 1.1,
            noise: 0.25,
            seed: 4,
        });
        let mut config = RealConfig::small();
        config.ivf = IvfConfig::new(16).metric(vlite_ann::Metric::Cosine);
        let mut d = RealDeployment::build(&corpus, config).expect("cosine flat builds");
        let path =
            std::env::temp_dir().join(format!("vlite-real-cosine-{}.seg", std::process::id()));
        let err = d.build_tiered_store(&path).expect_err("cosine unsupported");
        assert!(matches!(err, StoreError::Unsupported(_)), "{err}");
        // The index still owns its lists and serves real results.
        let hits = d.search_flat_path(corpus.vectors.get(0));
        assert_eq!(hits.first().map(|n| n.id), Some(0));
        assert!(!path.exists(), "no segment may be written");
    }

    #[test]
    fn tiered_store_makes_the_placement_physical() {
        let mut d = deployment();
        let full_path = d.search_flat_path(&[0.5; 16]);
        let path =
            std::env::temp_dir().join(format!("vlite-real-store-{}.seg", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut store = d.build_tiered_store(&path).expect("store builds");
        store.set_ephemeral(true);

        // The store's tiers mirror the router's placement exactly.
        let flags = store.hot_flags();
        for c in 0..d.index.nlist() as u32 {
            assert_eq!(flags[c as usize], d.router.split().is_hot(c));
        }
        let residency = store.residency();
        assert_eq!(residency.total_clusters, d.index.nlist());
        assert_eq!(residency.hot_clusters, d.router.split().hot_count());

        // The index's own lists were detached: bytes moved into the store.
        assert!(d.index.search(&[0.5; 16], 10, 16).is_empty());

        // Scanning through the store still serves the query (hot clusters
        // exactly, cold ones within SQ8 bounds).
        let probes = d.probe_global(&[0.5; 16]);
        let snapshot = store.snapshot();
        let hits = d.index.scan_lists_with(&snapshot, &[0.5; 16], &probes, 10);
        assert_eq!(hits.len(), 10);
        let full_ids: Vec<u64> = full_path.iter().map(|n| n.id).collect();
        let overlap = hits.iter().filter(|n| full_ids.contains(&n.id)).count();
        assert!(overlap >= 5, "tiered scan diverged badly: {overlap}/10");
    }
}
