//! Real-tier deployment: the full VectorLiteRAG offline + runtime path over
//! an actual [`IvfIndex`] (no cost models), including the threaded dynamic
//! dispatcher of §IV-B2.
//!
//! The "GPU" shards are executed by dedicated worker threads — this
//! environment has no GPUs, but the *coordination structure* is the paper's:
//! per-shard workers scan their pruned probe lists and raise completion
//! flags; the CPU loop scans cold clusters grouped by query and fires a
//! callback as each query finishes; a dispatcher thread polls the completion
//! queue, merges CPU and shard partials, re-ranks and forwards early
//! finishers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crossbeam::channel;

use vlite_ann::{merge_sorted, IvfConfig, IvfIndex, Neighbor, VecSet};
use vlite_workload::SyntheticCorpus;

use crate::{
    partition, AccessProfile, HitRateEstimator, IndexSplit, PartitionDecision, PartitionInput,
    PerfModel, RoutedQuery, Router,
};

/// Configuration for a real-tier deployment.
#[derive(Debug, Clone)]
pub struct RealConfig {
    /// IVF configuration for the index.
    pub ivf: IvfConfig,
    /// Probes per query.
    pub nprobe: usize,
    /// Results per query.
    pub top_k: usize,
    /// Calibration queries for profiling.
    pub n_profile_queries: usize,
    /// Search-stage SLO in seconds.
    pub slo_search: f64,
    /// Bare LLM throughput assumed by the partitioner (requests/s).
    pub mu_llm0: f64,
    /// KV bytes available with no index resident.
    pub kv_bytes_full: u64,
    /// Number of shard workers ("GPUs").
    pub n_shards: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RealConfig {
    /// Defaults suitable for the small synthetic corpora used in tests.
    pub fn small() -> Self {
        Self {
            ivf: IvfConfig::new(128),
            nprobe: 16,
            top_k: 10,
            n_profile_queries: 512,
            slo_search: 0.030,
            mu_llm0: 50.0,
            kv_bytes_full: 8 << 30,
            n_shards: 2,
            seed: 0x7ea1,
        }
    }
}

/// A deployment over a real index: profile, model, decision, split.
#[derive(Debug)]
pub struct RealDeployment {
    /// The trained IVF index.
    pub index: IvfIndex,
    /// Access profile measured by replaying calibration queries.
    pub profile: AccessProfile,
    /// Latency model fitted from wall-clock measurements.
    pub perf: PerfModel,
    /// Hit-rate estimator over the measured profile.
    pub estimator: HitRateEstimator,
    /// Partitioning decision.
    pub decision: PartitionDecision,
    /// Router over the built split.
    pub router: Router,
    config: RealConfig,
}

impl RealDeployment {
    /// Runs the full offline stage on a corpus: train the index, profile
    /// access patterns and latencies with real measurements, estimate,
    /// partition and split.
    ///
    /// # Errors
    ///
    /// Propagates index-training errors.
    pub fn build(corpus: &SyntheticCorpus, config: RealConfig) -> vlite_ann::Result<Self> {
        let index = IvfIndex::train(&corpus.vectors, &config.ivf)?;
        let calibration = corpus.queries(config.n_profile_queries, config.seed);

        // Access profiling: replay the coarse quantizer.
        let nlist = index.nlist();
        let mut counts = vec![0u64; nlist];
        let mut probe_sets = Vec::with_capacity(calibration.len());
        for q in calibration.iter() {
            let probes: Vec<u32> =
                index.probe(q, config.nprobe).iter().map(|p| p.list).collect();
            for &c in &probes {
                counts[c as usize] += 1;
            }
            probe_sets.push(probes);
        }
        let sizes: Vec<u64> = (0..nlist).map(|l| index.list_len(l) as u64).collect();
        let bytes: Vec<u64> = (0..nlist).map(|l| index.list_bytes(l) as u64).collect();
        let profile = AccessProfile::from_parts(counts, sizes, bytes, probe_sets);

        // Latency profiling: wall-clock CQ and LUT timings per batch size.
        let mut samples = Vec::new();
        for &batch in &[1usize, 2, 4, 8, 16] {
            let reps = (32 / batch).max(2);
            let (mut t_cq, mut t_lut) = (0.0f64, 0.0f64);
            for rep in 0..reps {
                let start_q = (rep * batch) % calibration.len().saturating_sub(batch).max(1);
                let t0 = Instant::now();
                let mut probe_lists = Vec::with_capacity(batch);
                for i in 0..batch {
                    let q = calibration.get((start_q + i) % calibration.len());
                    probe_lists.push(index.probe(q, config.nprobe));
                }
                let cq_done = Instant::now();
                for (i, probes) in probe_lists.iter().enumerate() {
                    let q = calibration.get((start_q + i) % calibration.len());
                    let lists: Vec<u32> = probes.iter().map(|p| p.list).collect();
                    let _ = index.scan_lists(q, &lists, config.top_k);
                }
                let scan_done = Instant::now();
                t_cq += cq_done.duration_since(t0).as_secs_f64();
                t_lut += scan_done.duration_since(cq_done).as_secs_f64();
            }
            samples.push((batch as f64, t_cq / reps as f64, t_lut / reps as f64));
        }
        let perf = PerfModel::fit(&samples).expect("timing samples are finite");

        let estimator = HitRateEstimator::from_profile(&profile);
        let input = PartitionInput::new(config.slo_search, config.mu_llm0, config.kv_bytes_full);
        let decision = partition(&input, &perf, &estimator, &profile);
        let split = IndexSplit::build(&profile, decision.coverage, config.n_shards);
        let router = Router::new(split);
        Ok(Self { index, profile, perf, estimator, decision, router, config })
    }

    /// The deployment configuration.
    pub fn config(&self) -> &RealConfig {
        &self.config
    }

    /// Plain (non-hybrid) search, for ground-truthing the hybrid path.
    pub fn search_flat_path(&self, query: &[f32]) -> Vec<Neighbor> {
        self.index.search(query, self.config.top_k, self.config.nprobe)
    }

    /// Hybrid batched search through the threaded dispatcher. Returns the
    /// final top-k per query plus the completion order observed by the
    /// dispatcher.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty.
    pub fn hybrid_search_batch(&self, queries: &VecSet) -> DispatchOutcome {
        assert!(!queries.is_empty(), "batch must be non-empty");
        let routed: Vec<RoutedQuery> = queries
            .iter()
            .map(|q| {
                let probes: Vec<u32> =
                    self.index.probe(q, self.config.nprobe).iter().map(|p| p.list).collect();
                self.router.route(&probes)
            })
            .collect();
        run_dispatcher(&self.index, queries, &routed, self.config.top_k)
    }
}

/// Outcome of one dispatched batch.
#[derive(Debug)]
pub struct DispatchOutcome {
    /// Final merged top-k per query (input order).
    pub results: Vec<Vec<Neighbor>>,
    /// Query indices in dispatcher completion order.
    pub completion_order: Vec<usize>,
}

/// The threaded dynamic dispatcher (§IV-B2).
///
/// Shard workers scan their (pruned) probe lists for the whole batch and
/// set completion flags; the CPU worker scans cold probes query-by-query
/// and pushes each finished query into a channel; the dispatcher thread
/// waits for all shard flags, then merges and re-ranks each query as it
/// arrives, recording completion order.
fn run_dispatcher(
    index: &IvfIndex,
    queries: &VecSet,
    routed: &[RoutedQuery],
    k: usize,
) -> DispatchOutcome {
    let n_queries = queries.len();
    let n_shards = routed.first().map_or(0, |r| r.shard_probes.len());
    let shard_flags: Vec<AtomicBool> = (0..n_shards).map(|_| AtomicBool::new(false)).collect();
    let (shard_tx, shard_rx) = channel::unbounded::<(usize, Vec<Vec<Neighbor>>)>();
    let (cpu_tx, cpu_rx) = channel::unbounded::<(usize, Vec<Neighbor>)>();

    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); n_queries];
    let mut completion_order: Vec<usize> = Vec::with_capacity(n_queries);

    std::thread::scope(|scope| {
        // Shard ("GPU") workers: scan all queries' pruned lists, publish the
        // partials, raise the completion flag.
        for shard in 0..n_shards {
            let tx = shard_tx.clone();
            let flags = &shard_flags;
            scope.spawn(move || {
                let mut partials: Vec<Vec<Neighbor>> = vec![Vec::new(); n_queries];
                for (qi, out) in partials.iter_mut().enumerate() {
                    let lists = &routed[qi].shard_probes_global[shard];
                    if !lists.is_empty() {
                        *out = index.scan_lists(queries.get(qi), lists, k);
                    }
                }
                flags[shard].store(true, Ordering::Release);
                tx.send((shard, partials)).expect("dispatcher alive");
            });
        }
        drop(shard_tx);
        // CPU worker: query-by-query cold scan with completion callback.
        scope.spawn(move || {
            for (qi, r) in routed.iter().enumerate() {
                let partial = if r.cpu_probes.is_empty() {
                    Vec::new()
                } else {
                    index.scan_lists(queries.get(qi), &r.cpu_probes, k)
                };
                // The callback: the query has scanned all assigned clusters.
                cpu_tx.send((qi, partial)).expect("dispatcher alive");
            }
            drop(cpu_tx);
        });
        // Dispatcher: wait for all GPU flags (collecting the partials), then
        // poll the CPU completion queue, merging and re-ranking per query.
        let mut shard_partials: Vec<Vec<Vec<Neighbor>>> =
            vec![vec![Vec::new(); n_queries]; n_shards];
        for _ in 0..n_shards {
            let (shard, partials) = shard_rx.recv().expect("shard worker alive");
            debug_assert!(shard_flags[shard].load(Ordering::Acquire));
            shard_partials[shard] = partials;
        }
        while let Ok((qi, cpu_partial)) = cpu_rx.recv() {
            let mut lists: Vec<Vec<Neighbor>> = vec![cpu_partial];
            for partials in &shard_partials {
                lists.push(partials[qi].clone());
            }
            results[qi] = merge_sorted(&lists, k);
            completion_order.push(qi);
        }
    });

    DispatchOutcome { results, completion_order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_workload::CorpusConfig;

    fn deployment() -> RealDeployment {
        let corpus = SyntheticCorpus::generate(&CorpusConfig {
            n_vectors: 6000,
            dim: 16,
            n_centers: 32,
            zipf_exponent: 1.2,
            noise: 0.25,
            seed: 9,
        });
        RealDeployment::build(&corpus, RealConfig::small()).expect("build succeeds")
    }

    #[test]
    fn profile_reflects_real_skew() {
        let d = deployment();
        // Zipf-weighted topics ⇒ skewed cluster accesses on a real index.
        let top20 = d.profile.mean_hit_rate(0.2);
        assert!(top20 > 0.3, "real access skew too weak: top-20% covers {top20}");
    }

    #[test]
    fn hybrid_results_match_plain_search_exactly() {
        // Routing partitions the probe list; scanning hot lists on shard
        // workers and cold lists on the CPU must reproduce the single-path
        // scan exactly after the merge.
        let d = deployment();
        let corpus_queries = {
            let corpus = SyntheticCorpus::generate(&CorpusConfig {
                n_vectors: 6000,
                dim: 16,
                n_centers: 32,
                zipf_exponent: 1.2,
                noise: 0.25,
                seed: 9,
            });
            corpus.queries(12, 77)
        };
        let outcome = d.hybrid_search_batch(&corpus_queries);
        for (qi, q) in corpus_queries.iter().enumerate() {
            let plain = d.search_flat_path(q);
            assert_eq!(outcome.results[qi], plain, "query {qi} diverged");
        }
    }

    #[test]
    fn dispatcher_completes_every_query_exactly_once() {
        let d = deployment();
        let corpus = SyntheticCorpus::generate(&CorpusConfig {
            n_vectors: 6000,
            dim: 16,
            n_centers: 32,
            zipf_exponent: 1.2,
            noise: 0.25,
            seed: 9,
        });
        let queries = corpus.queries(9, 31);
        let outcome = d.hybrid_search_batch(&queries);
        let mut order = outcome.completion_order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn decision_is_well_formed_on_real_measurements() {
        let d = deployment();
        assert!((0.0..=1.0).contains(&d.decision.coverage));
        assert!(d.decision.index_bytes <= d.profile.total_bytes());
        assert!(d.decision.expected_batch >= 1);
    }
}
