//! Latency-bounded partitioning — the paper's Algorithm 1.
//!
//! Finds the largest GPU cache coverage ρ that satisfies the search SLO
//! while accounting for the feedback loop between coverage and LLM
//! throughput: more GPU-resident index ⇒ less KV cache ⇒ lower throughput
//! ⇒ smaller expected batch ⇒ (usually) less coverage needed.

use crate::{AccessProfile, HitRateEstimator, PerfModel};

/// Inputs to the partitioning algorithm.
#[derive(Debug, Clone)]
pub struct PartitionInput {
    /// Search-stage latency SLO in seconds (`SLO_search`).
    pub slo_search: f64,
    /// Queueing factor ε; the paper sets 1.0 (worst case: queueing delay
    /// equals one batch latency; empirically 0.9–1.0 on the CPU baseline).
    pub epsilon: f64,
    /// Bare LLM peak throughput `µ_LLM0` in requests/s (node aggregate).
    pub mu_llm0: f64,
    /// KV-cache bytes available when no index is resident (node aggregate).
    pub kv_bytes_full: u64,
    /// Convergence threshold δ on coverage.
    pub delta: f64,
    /// Iteration cap (the loop provably oscillates within δ quickly; this
    /// is a backstop).
    pub max_iters: usize,
}

impl PartitionInput {
    /// Creates inputs with the paper's defaults (`ε = 1`, `δ = 1e-3`).
    pub fn new(slo_search: f64, mu_llm0: f64, kv_bytes_full: u64) -> Self {
        Self {
            slo_search,
            epsilon: 1.0,
            mu_llm0,
            kv_bytes_full,
            delta: 1e-3,
            max_iters: 64,
        }
    }
}

/// The partitioning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionDecision {
    /// Cache coverage ρ: fraction of clusters resident on GPUs.
    pub coverage: f64,
    /// GPU-resident index bytes at ρ.
    pub index_bytes: u64,
    /// KV bytes left for the LLM.
    pub kv_bytes_remaining: u64,
    /// Estimated LLM throughput after the KV reduction (requests/s).
    pub mu_llm: f64,
    /// Expected steady-state search batch size at that throughput.
    pub expected_batch: usize,
    /// The per-batch search latency budget `τ_s = SLO/(1+ε)`.
    pub tau_s: f64,
    /// Expected batch-minimum hit rate at the decision point.
    pub eta_min: f64,
    /// Predicted hybrid search latency at the decision point.
    pub predicted_latency: f64,
    /// Binary-search iterations used.
    pub iterations: usize,
    /// Whether the SLO is satisfiable at all (false ⇒ even full coverage
    /// misses `τ_s`; `coverage` is then 1.0, best effort).
    pub feasible: bool,
}

/// Runs Algorithm 1.
///
/// # Panics
///
/// Panics if `slo_search`, `mu_llm0` or `kv_bytes_full` are non-positive.
///
/// # Examples
///
/// ```
/// use vlite_core::{partition, AccessProfile, HitRateEstimator, PartitionInput, PerfModel,
///                  SearchCostModel};
/// use vlite_sim::devices;
/// use vlite_workload::DatasetPreset;
///
/// let preset = DatasetPreset::tiny();
/// let wl = preset.workload(2);
/// let profile = AccessProfile::from_workload(&preset, &wl, 2_000, 2);
/// let est = HitRateEstimator::from_profile(&profile);
/// let cost = SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
/// let perf = PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16]);
/// let input = PartitionInput::new(0.050, 20.0, 64 << 30);
/// let decision = partition(&input, &perf, &est, &profile);
/// assert!(decision.coverage >= 0.0 && decision.coverage <= 1.0);
/// ```
pub fn partition(
    input: &PartitionInput,
    perf: &PerfModel,
    estimator: &HitRateEstimator,
    profile: &AccessProfile,
) -> PartitionDecision {
    assert!(input.slo_search > 0.0, "SLO must be positive");
    assert!(input.mu_llm0 > 0.0, "bare throughput must be positive");
    assert!(input.kv_bytes_full > 0, "KV capacity must be positive");

    let tau_s = input.slo_search / (1.0 + input.epsilon);

    let mut rho_low = 0.0f64;
    let mut rho_high = 1.0f64;
    let mut rho = 0.0f64;
    let mut iterations = 0;
    while rho_high - rho_low > input.delta && iterations < input.max_iters {
        iterations += 1;
        let rho_m = 0.5 * (rho_low + rho_high);
        let mu = throughput_at(input, profile, rho_m);
        rho = infer_partition(tau_s, mu, perf, estimator);
        if rho > rho_m {
            rho_low = rho;
        } else {
            rho_high = rho_m;
        }
    }

    // Evaluate the decision point.
    let mu = throughput_at(input, profile, rho);
    let batch = (tau_s * mu).ceil().max(1.0) as usize;
    let eta_min = estimator.eta_min(rho, batch);
    let predicted = perf.hybrid_latency(batch as f64, eta_min);
    // Feasibility: full coverage at this batch size still meets τ_s?
    let feasible = predicted <= tau_s + 1e-9 || {
        let eta_full = estimator.eta_min(1.0, batch);
        perf.hybrid_latency(batch as f64, eta_full) <= tau_s + 1e-9
    };
    let index_bytes = profile.bytes_at(rho);
    PartitionDecision {
        coverage: rho,
        index_bytes,
        kv_bytes_remaining: input.kv_bytes_full.saturating_sub(index_bytes),
        mu_llm: mu,
        expected_batch: batch,
        tau_s,
        eta_min,
        predicted_latency: predicted,
        iterations,
        feasible,
    }
}

/// Line 5 of Algorithm 1: throughput under the KV reduction at coverage ρ.
/// Linear interpolation on the KV loss — "coarse, but a conservative lower
/// bound because the throughput–cache curve is generally convex".
fn throughput_at(input: &PartitionInput, profile: &AccessProfile, rho: f64) -> f64 {
    let index_bytes = profile.bytes_at(rho) as f64;
    let kv = input.kv_bytes_full as f64;
    let remaining = ((kv - index_bytes) / kv).max(0.05);
    input.mu_llm0 * remaining
}

/// The `INFERPARTITION` function (Algorithm 1, lines 15–25): given the
/// latency budget and a throughput bound, the two batch roundings each
/// yield a required hit rate and hence a coverage; the cheaper one wins.
fn infer_partition(tau_s: f64, mu: f64, perf: &PerfModel, estimator: &HitRateEstimator) -> f64 {
    // Rounding up: longer latency, must still meet τ_s.
    let b_up = (tau_s * mu).ceil().max(1.0);
    let eta1 = perf.required_hit_rate(b_up, tau_s);
    let rho1 = estimator.hit_rate_to_coverage(eta1, b_up as usize);

    // Rounding down: shorter latency bound B/µ to preserve throughput µ.
    let b_down = (tau_s * mu).floor().max(1.0);
    let eta2 = perf.required_hit_rate(b_down, b_down / mu);
    let rho2 = estimator.hit_rate_to_coverage(eta2, b_down as usize);

    rho1.min(rho2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchCostModel;
    use vlite_sim::devices;
    use vlite_workload::DatasetPreset;

    struct Fixture {
        perf: PerfModel,
        est: HitRateEstimator,
        profile: AccessProfile,
    }

    fn fixture(seed: u64) -> Fixture {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(seed);
        let profile = AccessProfile::from_workload(&preset, &wl, 3000, seed);
        let est = HitRateEstimator::from_profile(&profile);
        let cost =
            SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
        let perf = PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16, 32]);
        Fixture { perf, est, profile }
    }

    fn run(f: &Fixture, slo: f64, mu: f64) -> PartitionDecision {
        let input = PartitionInput::new(slo, mu, 64 << 30);
        partition(&input, &f.perf, &f.est, &f.profile)
    }

    #[test]
    fn coverage_is_in_unit_interval_and_converges() {
        let f = fixture(1);
        let d = run(&f, 0.060, 25.0);
        assert!((0.0..=1.0).contains(&d.coverage));
        assert!(d.iterations <= 64);
    }

    #[test]
    fn tighter_slo_needs_more_coverage() {
        let f = fixture(2);
        let relaxed = run(&f, 0.200, 25.0);
        let tight = run(&f, 0.050, 25.0);
        assert!(
            tight.coverage >= relaxed.coverage,
            "tight {} < relaxed {}",
            tight.coverage,
            relaxed.coverage
        );
    }

    #[test]
    fn generous_slo_needs_no_gpu_cache() {
        let f = fixture(3);
        // SLO far above the CPU-only latency at the expected batch.
        let d = run(&f, 5.0, 10.0);
        assert!(d.coverage < 0.01, "coverage {} should be ~0", d.coverage);
        assert!(d.feasible);
    }

    #[test]
    fn memory_accounting_is_consistent() {
        let f = fixture(4);
        let d = run(&f, 0.060, 25.0);
        assert_eq!(d.index_bytes, f.profile.bytes_at(d.coverage));
        assert_eq!(d.kv_bytes_remaining, (64u64 << 30) - d.index_bytes);
        assert!(d.mu_llm <= 25.0);
    }

    #[test]
    fn predicted_latency_meets_budget_when_feasible() {
        let f = fixture(5);
        let d = run(&f, 0.080, 20.0);
        if d.feasible {
            // Allow the δ-resolution slack of the binary search.
            assert!(
                d.predicted_latency <= d.tau_s * 1.1,
                "predicted {} exceeds budget {}",
                d.predicted_latency,
                d.tau_s
            );
        }
    }

    #[test]
    fn higher_throughput_demand_changes_batch() {
        let f = fixture(6);
        let low = run(&f, 0.080, 5.0);
        let high = run(&f, 0.080, 40.0);
        assert!(high.expected_batch >= low.expected_batch);
    }

    #[test]
    #[should_panic(expected = "SLO must be positive")]
    fn zero_slo_rejected() {
        let f = fixture(7);
        run(&f, 0.0, 10.0);
    }
}
