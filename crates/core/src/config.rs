//! System configuration and construction of a runnable RAG deployment.
//!
//! [`RagConfig`] captures one experimental configuration (dataset × model ×
//! node × serving system); [`RagSystem::build`] performs the paper's entire
//! offline stage: profiling, hit-rate estimation, bare-LLM throughput
//! measurement, partitioning, index splitting, and GPU memory accounting —
//! producing everything the runtime pipeline needs.

use vlite_llm::{throughput, LlmCostModel, ModelSpec};
use vlite_sim::{CpuSpec, GpuSpec, MemoryLedger, MemoryRegion};
use vlite_workload::{ClusterWorkload, DatasetPreset};

use crate::{
    partition, AccessProfile, HitRateEstimator, IndexSplit, PartitionDecision, PartitionInput,
    PerfModel, Router, SearchCostModel,
};

/// Which serving system runs retrieval (paper §V-A baselines + §VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Faiss-CPU IVF fast-scan; GPUs are exclusively the LLM's.
    CpuOnly,
    /// Faiss-GPU IVF on one dedicated GPU; remaining GPUs serve the LLM.
    DedGpu,
    /// Faiss-GPU IVF sharded across all GPUs (`IndexIVFShards`): unpruned
    /// probes, full index resident, maximal contention.
    AllGpu,
    /// VectorLiteRAG: latency-bounded partitioning + pruned routing +
    /// dynamic dispatcher.
    VectorLite,
    /// HedraRAG-style throughput-balanced caching (latency-blind, unpruned
    /// shard probing).
    HedraRag,
}

impl SystemKind {
    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::CpuOnly => "CPU Only",
            SystemKind::DedGpu => "DED-GPU",
            SystemKind::AllGpu => "ALL-GPU",
            SystemKind::VectorLite => "vLiteRAG",
            SystemKind::HedraRag => "HedraRAG",
        }
    }

    /// The four main-evaluation systems (Fig. 11 legend order).
    pub fn main_four() -> [SystemKind; 4] {
        [
            SystemKind::CpuOnly,
            SystemKind::DedGpu,
            SystemKind::AllGpu,
            SystemKind::VectorLite,
        ]
    }
}

/// Hardware of one serving node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// GPU model (uniform across the node, as in the paper's testbeds).
    pub gpu: GpuSpec,
    /// Number of GPUs.
    pub n_gpus: usize,
    /// Host CPU pool.
    pub cpu: CpuSpec,
}

impl NodeConfig {
    /// The paper's L40S node: 8× L40S + 32-core Xeon 6426Y.
    pub fn l40s_node() -> Self {
        Self {
            gpu: vlite_sim::devices::l40s(),
            n_gpus: 8,
            cpu: vlite_sim::devices::xeon_6426y(),
        }
    }

    /// The paper's H100 node: 8× H100 + 64-core Xeon 8462Y.
    pub fn h100_node() -> Self {
        Self {
            gpu: vlite_sim::devices::h100(),
            n_gpus: 8,
            cpu: vlite_sim::devices::xeon_8462y(),
        }
    }

    /// Scales the node to `n_gpus`, provisioning CPU cores proportionally
    /// (the Fig. 17 cloud-provider policy: 8 cores per GPU on H100 nodes).
    pub fn with_gpus(&self, n_gpus: usize) -> Self {
        let cores_per_gpu = self.cpu.cores as f64 / self.n_gpus as f64;
        Self {
            gpu: self.gpu.clone(),
            n_gpus,
            cpu: self
                .cpu
                .with_cores((cores_per_gpu * n_gpus as f64).round().max(1.0) as u32),
        }
    }

    /// The node the paper pairs with a model (8B → L40S, larger → H100).
    pub fn for_model(model: &ModelSpec) -> Self {
        if model.params <= 10_000_000_000 {
            Self::l40s_node()
        } else {
            Self::h100_node()
        }
    }
}

/// One experimental configuration.
#[derive(Debug, Clone)]
pub struct RagConfig {
    /// Serving system under test.
    pub system: SystemKind,
    /// Node hardware.
    pub node: NodeConfig,
    /// Generation model.
    pub model: ModelSpec,
    /// Tensor-parallel degree (defaults to the model's paper setting).
    pub tp: u32,
    /// Vector database.
    pub dataset: DatasetPreset,
    /// Prompt length fed to the LLM (paper: 1024).
    pub input_tokens: u64,
    /// Generation length (paper: 256).
    pub output_tokens: u64,
    /// Search-stage SLO in seconds (defaults to the dataset's Table I
    /// value).
    pub slo_search: f64,
    /// Queueing factor ε of Algorithm 1.
    pub epsilon: f64,
    /// Dynamic dispatcher enabled (vLiteRAG default true; ablation knob).
    pub dispatcher: bool,
    /// Per-GPU workspace reservation in bytes (activations, CUDA context).
    pub workspace_bytes: u64,
    /// RNG seed for profiling and workload draws.
    pub seed: u64,
}

impl RagConfig {
    /// Builds the paper's default configuration for a (system, dataset,
    /// model) triple: paper node pairing, default TP, 1024/256 tokens,
    /// Table I search SLO.
    pub fn paper_default(system: SystemKind, dataset: DatasetPreset, model: ModelSpec) -> Self {
        let node = NodeConfig::for_model(&model);
        let tp = model.default_tp;
        let slo_search = dataset.slo_search_ms / 1e3;
        Self {
            system,
            node,
            model,
            tp,
            dataset,
            input_tokens: 1024,
            output_tokens: 256,
            slo_search,
            epsilon: 1.0,
            dispatcher: system == SystemKind::VectorLite,
            workspace_bytes: 4 << 30,
            seed: 0xa11ce,
        }
    }

    /// A miniature configuration for fast tests (tiny dataset and model on
    /// a 4-GPU node).
    pub fn tiny(system: SystemKind) -> Self {
        let mut cfg = Self::paper_default(system, DatasetPreset::tiny(), ModelSpec::tiny());
        cfg.node = NodeConfig {
            n_gpus: 4,
            ..NodeConfig::l40s_node()
        };
        cfg.input_tokens = 256;
        cfg.output_tokens = 64;
        cfg
    }
}

/// A fully constructed deployment, ready for the pipeline.
#[derive(Debug)]
pub struct RagSystem {
    /// The configuration this system was built from.
    pub config: RagConfig,
    /// Calibrated cluster workload.
    pub workload: ClusterWorkload,
    /// Access-statistics profile.
    pub profile: AccessProfile,
    /// Hit-rate estimator.
    pub estimator: HitRateEstimator,
    /// Analytic search cost model.
    pub cost: SearchCostModel,
    /// Fitted performance model.
    pub perf: PerfModel,
    /// Partitioning decision (coverage 0 for CPU-only, 1 for ALL-GPU).
    pub decision: PartitionDecision,
    /// Index split across retrieval GPUs (empty shards for CPU-only).
    pub router: Router,
    /// LLM cost model (per instance).
    pub llm_cost: LlmCostModel,
    /// Number of LLM instances (TP groups) on the node.
    pub n_llm_instances: usize,
    /// KV bytes per LLM instance after index residency.
    pub kv_bytes_per_instance: u64,
    /// Bare (no-index) LLM throughput of the whole node, requests/s.
    pub mu_llm0: f64,
    /// The paper's `SLO_LLM`: generation latency at the throughput limit.
    pub slo_llm: f64,
    /// Per-GPU memory ledgers (validated: everything fits).
    pub ledgers: Vec<MemoryLedger>,
    /// GPUs used by retrieval shards (`shard index → GPU index`).
    pub shard_gpus: Vec<usize>,
}

impl RagSystem {
    /// Runs the full offline stage for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (TP not dividing the
    /// GPU count, model not fitting, index shards overflowing GPU memory).
    pub fn build(config: RagConfig) -> RagSystem {
        let tp = config.tp as usize;
        assert!(
            tp >= 1 && tp <= config.node.n_gpus,
            "TP degree must fit the node"
        );
        let workload = config.dataset.workload(config.seed);
        let profile = AccessProfile::from_workload(&config.dataset, &workload, 3000, config.seed);
        let estimator = HitRateEstimator::from_profile(&profile);
        let cost = SearchCostModel::from_preset(
            &config.dataset,
            &workload,
            &config.node.cpu,
            &config.node.gpu,
        );
        let perf = PerfModel::from_cost_model(&cost, &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48]);

        let llm_cost = LlmCostModel::new(config.model.clone(), config.node.gpu.clone(), config.tp);

        // GPUs available to the LLM depend on the system.
        let retrieval_gpus: usize = match config.system {
            SystemKind::DedGpu => 1,
            _ => 0,
        };
        let llm_gpus = config.node.n_gpus - retrieval_gpus;
        let n_llm_instances = llm_gpus / tp;
        assert!(
            n_llm_instances >= 1,
            "no LLM instance fits the remaining GPUs"
        );

        // Bare KV capacity per instance (no index resident).
        let per_gpu_free = config
            .node
            .gpu
            .mem_bytes
            .checked_sub(llm_cost.param_bytes_per_gpu() + config.workspace_bytes)
            .expect("model weights + workspace exceed GPU memory");
        let kv_full_per_instance = per_gpu_free * tp as u64;

        // Bare LLM throughput and SLO_LLM (Table I: latency at the
        // throughput limit, ≈ one prefill + early decode steps at the
        // saturation batch).
        let peak = throughput::measure_peak(
            &llm_cost,
            kv_full_per_instance,
            config.input_tokens,
            config.output_tokens,
            64,
        );
        let mu_llm0 = peak.requests_per_sec * n_llm_instances as f64;
        let sat_batch = (kv_full_per_instance
            / ((config.input_tokens + config.output_tokens) * config.model.kv_bytes_per_token()))
        .clamp(1, 256) as usize;
        // Generation latency at the throughput limit ≈ one prefill plus a
        // few decode rounds of queueing at the saturation batch; the
        // 4-round constant reproduces the paper's Table I values
        // (217/191/311 ms) within ~10% on the paper's model/node pairs.
        let slo_llm = llm_cost
            .prefill_time(config.input_tokens, 1.0)
            .as_secs_f64()
            + 4.0
                * llm_cost
                    .decode_step_time(sat_batch, sat_batch as u64 * config.input_tokens, 1.0)
                    .as_secs_f64();

        // Partitioning decision per system.
        let kv_node_full = kv_full_per_instance * n_llm_instances as u64;
        let decision = match config.system {
            SystemKind::CpuOnly | SystemKind::DedGpu => {
                zero_coverage_decision(&profile, mu_llm0, kv_node_full, config.slo_search)
            }
            SystemKind::AllGpu => full_coverage_decision(&profile, mu_llm0, kv_node_full),
            SystemKind::VectorLite => {
                let mut input = PartitionInput::new(config.slo_search, mu_llm0, kv_node_full);
                input.epsilon = config.epsilon;
                partition(&input, &perf, &estimator, &profile)
            }
            SystemKind::HedraRag => {
                let coverage = crate::baselines::hedra_coverage(
                    &perf,
                    &estimator,
                    &profile,
                    mu_llm0,
                    kv_node_full,
                );
                decision_at_coverage(coverage, &profile, mu_llm0, kv_node_full, config.slo_search)
            }
        };

        // Shards live on the LLM GPUs (co-location) except for DED-GPU,
        // where the single dedicated GPU holds everything.
        let (n_shards, shard_gpus): (usize, Vec<usize>) = match config.system {
            SystemKind::DedGpu => (1, vec![config.node.n_gpus - 1]),
            _ => (llm_gpus.max(1), (0..llm_gpus.max(1)).collect()),
        };
        let split = IndexSplit::build(&profile, decision.coverage, n_shards);
        let router = Router::new(split);

        // Memory accounting: per-GPU ledger with params, shard, workspace;
        // KV gets the remainder, evenly across each instance's GPUs.
        let mut ledgers: Vec<MemoryLedger> = (0..config.node.n_gpus)
            .map(|_| MemoryLedger::new(config.node.gpu.mem_bytes))
            .collect();
        for ledger in ledgers.iter_mut().take(llm_gpus) {
            ledger
                .reserve(MemoryRegion::Params, llm_cost.param_bytes_per_gpu())
                .expect("params fit (checked by cost model)");
            ledger
                .reserve(MemoryRegion::Workspace, config.workspace_bytes)
                .expect("workspace fits");
        }
        for (shard, &gpu) in shard_gpus.iter().enumerate() {
            let bytes = router
                .split()
                .shard_bytes()
                .get(shard)
                .copied()
                .unwrap_or(0);
            // DED-GPU may hold an index larger than one GPU; cap at capacity
            // (the spill is precisely why the paper calls it wasteful).
            let granted = ledgers[gpu].reserve_up_to(MemoryRegion::IndexShard, bytes);
            debug_assert!(granted <= bytes);
        }
        let mut kv_bytes_per_instance = u64::MAX;
        for instance in 0..n_llm_instances {
            let gpus = instance * tp..(instance + 1) * tp;
            let mut instance_kv = 0u64;
            for gpu in gpus {
                let free = ledgers[gpu].free();
                ledgers[gpu]
                    .reserve(MemoryRegion::KvCache, free)
                    .expect("free is free");
                instance_kv += free;
            }
            kv_bytes_per_instance = kv_bytes_per_instance.min(instance_kv);
        }
        // Keep at least one request's worth of KV so the engine can run.
        let min_kv =
            (config.input_tokens + config.output_tokens + 16) * config.model.kv_bytes_per_token();
        kv_bytes_per_instance = kv_bytes_per_instance.max(min_kv);

        RagSystem {
            config,
            workload,
            profile,
            estimator,
            cost,
            perf,
            decision,
            router,
            llm_cost,
            n_llm_instances,
            kv_bytes_per_instance,
            mu_llm0,
            slo_llm,
            ledgers,
            shard_gpus,
        }
    }

    /// Combined TTFT target: `SLO_LLM + SLO_search` (paper §VI-B).
    pub fn slo_ttft(&self) -> f64 {
        self.slo_llm + self.config.slo_search
    }
}

fn decision_at_coverage(
    coverage: f64,
    profile: &AccessProfile,
    mu_llm0: f64,
    kv_full: u64,
    slo_search: f64,
) -> PartitionDecision {
    let index_bytes = profile.bytes_at(coverage);
    let mu = mu_llm0 * ((kv_full.saturating_sub(index_bytes)) as f64 / kv_full as f64).max(0.05);
    PartitionDecision {
        coverage,
        index_bytes,
        kv_bytes_remaining: kv_full.saturating_sub(index_bytes),
        mu_llm: mu,
        expected_batch: (slo_search / 2.0 * mu).ceil().max(1.0) as usize,
        tau_s: slo_search / 2.0,
        eta_min: 0.0,
        predicted_latency: 0.0,
        iterations: 0,
        feasible: true,
    }
}

fn zero_coverage_decision(
    profile: &AccessProfile,
    mu_llm0: f64,
    kv_full: u64,
    slo_search: f64,
) -> PartitionDecision {
    decision_at_coverage(0.0, profile, mu_llm0, kv_full, slo_search)
}

fn full_coverage_decision(
    profile: &AccessProfile,
    mu_llm0: f64,
    kv_full: u64,
) -> PartitionDecision {
    decision_at_coverage(1.0, profile, mu_llm0, kv_full, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_vectorlite_system_builds() {
        let system = RagSystem::build(RagConfig::tiny(SystemKind::VectorLite));
        assert!(system.n_llm_instances >= 1);
        assert!(system.mu_llm0 > 0.0);
        assert!((0.0..=1.0).contains(&system.decision.coverage));
        assert!(system.slo_llm > 0.0);
    }

    #[test]
    fn cpu_only_keeps_gpus_clean() {
        let system = RagSystem::build(RagConfig::tiny(SystemKind::CpuOnly));
        assert_eq!(system.decision.coverage, 0.0);
        for ledger in &system.ledgers {
            assert_eq!(ledger.region(MemoryRegion::IndexShard), 0);
        }
    }

    #[test]
    fn all_gpu_hosts_whole_index() {
        let system = RagSystem::build(RagConfig::tiny(SystemKind::AllGpu));
        assert_eq!(system.decision.coverage, 1.0);
        let resident: u64 = system
            .ledgers
            .iter()
            .map(|l| l.region(MemoryRegion::IndexShard))
            .sum();
        assert_eq!(resident, system.profile.total_bytes());
    }

    #[test]
    fn ded_gpu_loses_an_instance_or_capacity() {
        let cpu_only = RagSystem::build(RagConfig::tiny(SystemKind::CpuOnly));
        let ded = RagSystem::build(RagConfig::tiny(SystemKind::DedGpu));
        assert!(ded.n_llm_instances <= cpu_only.n_llm_instances);
        // The dedicated GPU is the last one and hosts the single shard.
        assert_eq!(ded.shard_gpus, vec![3]);
    }

    #[test]
    fn vectorlite_kv_dominates_all_gpu_kv() {
        // vLiteRAG caches at most what ALL-GPU caches, so its instances
        // keep at least as much KV.
        let vlite = RagSystem::build(RagConfig::tiny(SystemKind::VectorLite));
        let all = RagSystem::build(RagConfig::tiny(SystemKind::AllGpu));
        assert!(vlite.kv_bytes_per_instance >= all.kv_bytes_per_instance);
    }

    #[test]
    fn ledgers_never_oversubscribe() {
        for kind in SystemKind::main_four() {
            let system = RagSystem::build(RagConfig::tiny(kind));
            for ledger in &system.ledgers {
                assert!(ledger.used() <= ledger.capacity());
            }
        }
    }

    #[test]
    fn slo_ttft_combines_stages() {
        let system = RagSystem::build(RagConfig::tiny(SystemKind::VectorLite));
        assert!((system.slo_ttft() - (system.slo_llm + system.config.slo_search)).abs() < 1e-12);
    }
}
