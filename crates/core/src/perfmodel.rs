//! The fitted performance model: `T_CQ(b)`, `T_LUT(b)` and Eq. 1.

use crate::stats::PiecewiseLinear;
use crate::SearchCostModel;

/// Piecewise-linear latency model of the two CPU search stages, fit from
/// profiling samples (paper §IV-A1: "we model `T_CPU_CQ` and `T_CPU_LUT` as
/// piecewise linear functions of batch size").
///
/// # Examples
///
/// ```
/// use vlite_core::PerfModel;
///
/// let samples = vec![(1.0, 0.010, 0.090), (8.0, 0.020, 0.130), (16.0, 0.031, 0.178)];
/// let model = PerfModel::fit(&samples).unwrap();
/// let tau = model.hybrid_latency(8.0, 0.5);
/// assert!(tau < model.total(8.0)); // caching strictly helps
/// ```
#[derive(Debug, Clone)]
pub struct PerfModel {
    t_cq: PiecewiseLinear,
    t_lut: PiecewiseLinear,
}

impl PerfModel {
    /// Fits the model from `(batch, t_cq_seconds, t_lut_seconds)` samples.
    ///
    /// Returns `None` if `samples` is empty or contains non-finite values.
    pub fn fit(samples: &[(f64, f64, f64)]) -> Option<PerfModel> {
        let cq: Vec<(f64, f64)> = samples.iter().map(|&(b, cq, _)| (b, cq)).collect();
        let lut: Vec<(f64, f64)> = samples.iter().map(|&(b, _, lut)| (b, lut)).collect();
        Some(PerfModel {
            t_cq: PiecewiseLinear::from_points(cq)?,
            t_lut: PiecewiseLinear::from_points(lut)?,
        })
    }

    /// Builds the model by sampling an analytic cost model at the given
    /// batch sizes (the modeled-tier "profiling run").
    ///
    /// # Panics
    ///
    /// Panics if `batches` is empty.
    pub fn from_cost_model(cost: &SearchCostModel, batches: &[usize]) -> PerfModel {
        assert!(!batches.is_empty(), "need at least one batch size");
        let samples: Vec<(f64, f64, f64)> = batches
            .iter()
            .map(|&b| {
                let bf = b as f64;
                (bf, cost.t_cq(bf), cost.t_lut_full(bf))
            })
            .collect();
        Self::fit(&samples).expect("cost model produces finite samples")
    }

    /// Coarse-quantization latency at batch size `b`.
    pub fn t_cq(&self, b: f64) -> f64 {
        self.t_cq.eval(b).max(0.0)
    }

    /// Full LUT-stage latency at batch size `b`.
    pub fn t_lut(&self, b: f64) -> f64 {
        self.t_lut.eval(b).max(0.0)
    }

    /// Total CPU-only search latency at batch size `b`.
    pub fn total(&self, b: f64) -> f64 {
        self.t_cq(b) + self.t_lut(b)
    }

    /// Paper Eq. 1: `τ_s(b) = T_CQ(b) + (1 − η)·T_LUT(b)`, with `η` the
    /// (minimum) hit rate in the batch.
    pub fn hybrid_latency(&self, b: f64, eta: f64) -> f64 {
        self.t_cq(b) + (1.0 - eta.clamp(0.0, 1.0)) * self.t_lut(b)
    }

    /// Inverts Eq. 1 for the hit rate needed to reach `tau` at batch `b`:
    /// `η = (T_search(B) − τ)/T_LUT(B)` (Algorithm 1, line 18).
    ///
    /// Values above 1 mean the target is unreachable even with full
    /// caching; at or below 0 mean the CPU alone already meets it.
    pub fn required_hit_rate(&self, b: f64, tau: f64) -> f64 {
        let lut = self.t_lut(b);
        if lut <= 0.0 {
            return 0.0;
        }
        (self.total(b) - tau) / lut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_sim::devices;
    use vlite_workload::DatasetPreset;

    fn model() -> PerfModel {
        let preset = DatasetPreset::orcas_1k();
        let wl = preset.workload(1);
        let cost =
            SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
        PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16, 32])
    }

    #[test]
    fn eq1_endpoints() {
        let m = model();
        assert!((m.hybrid_latency(8.0, 1.0) - m.t_cq(8.0)).abs() < 1e-12);
        assert!((m.hybrid_latency(8.0, 0.0) - m.total(8.0)).abs() < 1e-12);
    }

    #[test]
    fn required_hit_rate_inverts_eq1() {
        let m = model();
        for &eta in &[0.1, 0.4, 0.75, 0.95] {
            let tau = m.hybrid_latency(6.0, eta);
            let back = m.required_hit_rate(6.0, tau);
            assert!((back - eta).abs() < 1e-9, "eta={eta} back={back}");
        }
    }

    #[test]
    fn required_hit_rate_flags_infeasible_targets() {
        let m = model();
        // A target far below T_CQ is unreachable: required η > 1.
        assert!(m.required_hit_rate(8.0, m.t_cq(8.0) * 0.1) > 1.0);
        // A target above total latency needs no caching at all: η ≤ 0.
        assert!(m.required_hit_rate(8.0, m.total(8.0) * 1.5) <= 0.0);
    }

    #[test]
    fn latency_grows_with_batch() {
        let m = model();
        assert!(m.total(16.0) > m.total(2.0));
        assert!(m.t_cq(16.0) > m.t_cq(2.0));
    }

    #[test]
    fn fit_interpolates_measured_knots() {
        let samples = vec![(1.0, 0.01, 0.05), (4.0, 0.013, 0.08), (16.0, 0.025, 0.2)];
        let m = PerfModel::fit(&samples).unwrap();
        assert!((m.t_cq(4.0) - 0.013).abs() < 1e-12);
        assert!((m.t_lut(16.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_fit_is_none() {
        assert!(PerfModel::fit(&[]).is_none());
    }
}
