//! Profiling: cluster access statistics and latency curves.
//!
//! VectorLiteRAG's offline stage (paper §IV-A1) collects, from calibration
//! queries: (1) the cluster access frequency distribution, (2) the CPU
//! search latency breakdown across batch sizes. [`AccessProfile`] is the
//! first; [`PerfModel`](crate::PerfModel) is fit from the second.
//!
//! The profile also owns the coverage bookkeeping every later stage needs:
//! clusters sorted by access count with prefix sums of accesses, sizes and
//! bytes, so `coverage → (mean hit rate, hot set, resident bytes)` are all
//! O(1)/O(k) lookups.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vlite_workload::{ClusterWorkload, DatasetPreset};

/// Per-cluster access statistics plus cluster geometry (sizes/bytes).
///
/// # Examples
///
/// ```
/// use vlite_core::AccessProfile;
/// use vlite_workload::DatasetPreset;
///
/// let preset = DatasetPreset::tiny();
/// let wl = preset.workload(7);
/// let profile = AccessProfile::from_workload(&preset, &wl, 2_000, 7);
/// let eta = profile.mean_hit_rate(0.2);
/// assert!(eta > 0.2 && eta <= 1.0); // skew ⇒ top-20% covers more than 20%
/// ```
#[derive(Debug, Clone)]
pub struct AccessProfile {
    nlist: usize,
    /// Access count per cluster (cluster id order).
    counts: Vec<u64>,
    /// Vector count per cluster (cluster id order).
    sizes: Vec<u64>,
    /// Index bytes per cluster (cluster id order).
    bytes: Vec<u64>,
    /// Cluster ids sorted by access count descending (ties by id).
    order: Vec<u32>,
    /// Prefix sums over `order` of counts / sizes / bytes.
    prefix_counts: Vec<u64>,
    prefix_bytes: Vec<u64>,
    /// Sample of per-query probe sets kept for variance estimation.
    probe_sets: Vec<Vec<u32>>,
}

impl AccessProfile {
    /// Profiles a modeled-tier workload with `n_queries` calibration
    /// queries (paper: 0.5% of the training set sufficed, §IV-B3).
    pub fn from_workload(
        preset: &DatasetPreset,
        workload: &ClusterWorkload,
        n_queries: usize,
        seed: u64,
    ) -> AccessProfile {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; workload.nlist()];
        let keep = n_queries.min(4096);
        let mut probe_sets = Vec::with_capacity(keep);
        for q in 0..n_queries {
            let probes = workload.gen_probe_set(&mut rng);
            for &c in &probes {
                counts[c as usize] += 1;
            }
            // Keep an evenly spaced sample of probe sets for variance fits.
            if q % n_queries.div_ceil(keep).max(1) == 0 {
                probe_sets.push(probes);
            }
        }
        let sizes = preset.cluster_sizes(workload);
        let bytes = preset.cluster_bytes(workload);
        Self::from_parts(counts, sizes, bytes, probe_sets)
    }

    /// Builds a profile from raw observations — the real-tier path, where
    /// counts and probe sets come from [`IvfIndex::probe`] on calibration
    /// queries and sizes/bytes from the index itself.
    ///
    /// [`IvfIndex::probe`]: vlite_ann::IvfIndex::probe
    ///
    /// # Panics
    ///
    /// Panics if the per-cluster arrays disagree in length.
    pub fn from_parts(
        counts: Vec<u64>,
        sizes: Vec<u64>,
        bytes: Vec<u64>,
        probe_sets: Vec<Vec<u32>>,
    ) -> AccessProfile {
        assert_eq!(counts.len(), sizes.len(), "counts/sizes length mismatch");
        assert_eq!(counts.len(), bytes.len(), "counts/bytes length mismatch");
        let nlist = counts.len();
        let mut order: Vec<u32> = (0..nlist as u32).collect();
        order.sort_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b)));
        let mut prefix_counts = Vec::with_capacity(nlist);
        let mut prefix_bytes = Vec::with_capacity(nlist);
        let (mut ca, mut by) = (0u64, 0u64);
        for &c in &order {
            ca += counts[c as usize];
            by += bytes[c as usize];
            prefix_counts.push(ca);
            prefix_bytes.push(by);
        }
        AccessProfile {
            nlist,
            counts,
            sizes,
            bytes,
            order,
            prefix_counts,
            prefix_bytes,
            probe_sets,
        }
    }

    /// Number of clusters.
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// Access count of one cluster.
    pub fn count(&self, cluster: u32) -> u64 {
        self.counts[cluster as usize]
    }

    /// Vector count of one cluster.
    pub fn size(&self, cluster: u32) -> u64 {
        self.sizes[cluster as usize]
    }

    /// Index bytes of one cluster.
    pub fn bytes_of(&self, cluster: u32) -> u64 {
        self.bytes[cluster as usize]
    }

    /// Total index bytes.
    pub fn total_bytes(&self) -> u64 {
        *self.prefix_bytes.last().unwrap_or(&0)
    }

    /// The retained sample of per-query probe sets.
    pub fn probe_sets(&self) -> &[Vec<u32>] {
        &self.probe_sets
    }

    fn hot_len(&self, coverage: f64) -> usize {
        ((self.nlist as f64 * coverage.clamp(0.0, 1.0)).round() as usize).min(self.nlist)
    }

    /// The hot set at `coverage`: top clusters by access count.
    pub fn hot_set(&self, coverage: f64) -> Vec<u32> {
        self.order[..self.hot_len(coverage)].to_vec()
    }

    /// Membership mask of the hot set at `coverage`.
    pub fn hot_mask(&self, coverage: f64) -> Vec<bool> {
        let mut mask = vec![false; self.nlist];
        for &c in &self.order[..self.hot_len(coverage)] {
            mask[c as usize] = true;
        }
        mask
    }

    /// Mean hit rate at `coverage`: the fraction of observed accesses that
    /// land on the hot set.
    pub fn mean_hit_rate(&self, coverage: f64) -> f64 {
        let k = self.hot_len(coverage);
        if k == 0 {
            return 0.0;
        }
        let total = *self.prefix_counts.last().expect("nlist > 0");
        if total == 0 {
            return 0.0;
        }
        self.prefix_counts[k - 1] as f64 / total as f64
    }

    /// GPU-resident index bytes at `coverage`.
    pub fn bytes_at(&self, coverage: f64) -> u64 {
        let k = self.hot_len(coverage);
        if k == 0 {
            0
        } else {
            self.prefix_bytes[k - 1]
        }
    }

    /// Per-query hit rates of the retained probe-set sample against the
    /// hot set at `coverage`.
    pub fn hit_rate_samples(&self, coverage: f64) -> Vec<f64> {
        let mask = self.hot_mask(coverage);
        self.probe_sets
            .iter()
            .map(|probes| {
                let hits = probes.iter().filter(|&&c| mask[c as usize]).count();
                hits as f64 / probes.len().max(1) as f64
            })
            .collect()
    }

    /// Empirical (mean, variance) of per-query hit rates at `coverage`.
    pub fn hit_rate_moments(&self, coverage: f64) -> (f64, f64) {
        let samples = self.hit_rate_samples(coverage);
        if samples.is_empty() {
            return (self.mean_hit_rate(coverage), 0.0);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        (mean, var)
    }

    /// Fits `σ²_max`, the hit-rate variance at mean 0.5, by scanning
    /// coverages and taking the variance at the coverage whose mean is
    /// closest to 0.5 (the paper's profiling recipe, §IV-A2). Clamped below
    /// 0.25 so the Beta moment fit stays feasible.
    pub fn fit_sigma2_max(&self) -> f64 {
        let mut best = (f64::INFINITY, 0.01);
        for step in 1..=60 {
            let coverage = step as f64 / 60.0;
            let (mean, var) = self.hit_rate_moments(coverage);
            let gap = (mean - 0.5).abs();
            if gap < best.0 && var > 0.0 {
                best = (gap, var);
            }
        }
        best.1.clamp(1e-6, 0.24)
    }

    /// Access shares sorted descending (Fig. 5's CDF input).
    pub fn access_shares_sorted(&self) -> Vec<f64> {
        let total = (*self.prefix_counts.last().expect("nlist > 0")).max(1) as f64;
        self.order
            .iter()
            .map(|&c| self.counts[c as usize] as f64 / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> AccessProfile {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(3);
        AccessProfile::from_workload(&preset, &wl, 3000, 3)
    }

    #[test]
    fn mean_hit_rate_is_monotone_and_bounded() {
        let p = tiny_profile();
        let mut prev = 0.0;
        for step in 0..=20 {
            let cov = step as f64 / 20.0;
            let eta = p.mean_hit_rate(cov);
            assert!((0.0..=1.0).contains(&eta));
            assert!(eta >= prev);
            prev = eta;
        }
        assert_eq!(p.mean_hit_rate(1.0), 1.0);
        assert_eq!(p.mean_hit_rate(0.0), 0.0);
    }

    #[test]
    fn skew_means_top_20_exceeds_20_percent() {
        let p = tiny_profile();
        // Tiny preset calibrates to 0.80 top-20% share.
        let eta = p.mean_hit_rate(0.2);
        assert!((eta - 0.8).abs() < 0.05, "eta={eta}");
    }

    #[test]
    fn bytes_at_is_monotone_and_totals() {
        let p = tiny_profile();
        assert_eq!(p.bytes_at(0.0), 0);
        assert!(p.bytes_at(0.3) > p.bytes_at(0.1));
        assert_eq!(p.bytes_at(1.0), p.total_bytes());
    }

    #[test]
    fn hot_set_holds_most_accessed_clusters() {
        let p = tiny_profile();
        let hot = p.hot_set(0.1);
        let min_hot = hot.iter().map(|&c| p.count(c)).min().unwrap();
        let cold_max = (0..p.nlist() as u32)
            .filter(|c| !hot.contains(c))
            .map(|c| p.count(c))
            .max()
            .unwrap();
        assert!(min_hot >= cold_max);
    }

    #[test]
    fn hit_rate_variance_peaks_near_half_mean() {
        // Paper Fig. 8 right: parabola in the mean.
        let p = tiny_profile();
        let (m_low, v_low) = p.hit_rate_moments(0.02);
        let mut v_mid = 0.0f64;
        for step in 1..=40 {
            let (m, v) = p.hit_rate_moments(step as f64 / 40.0);
            if (m - 0.5).abs() < 0.15 {
                v_mid = v_mid.max(v);
            }
        }
        assert!(
            v_mid > v_low,
            "variance at mean≈0.5 ({v_mid}) ≤ variance at mean≈{m_low} ({v_low})"
        );
    }

    #[test]
    fn sigma2_max_is_feasible_for_beta_fit() {
        let p = tiny_profile();
        let s = p.fit_sigma2_max();
        assert!(s > 0.0 && s < 0.25);
    }

    #[test]
    fn probe_set_sample_is_retained() {
        let p = tiny_profile();
        assert!(!p.probe_sets().is_empty());
        assert!(p.probe_sets().len() <= 4096);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_parts_rejected() {
        AccessProfile::from_parts(vec![1, 2], vec![1], vec![1, 1], vec![]);
    }
}
