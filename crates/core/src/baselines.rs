//! Baseline partitioning policies.
//!
//! The serving-time behaviour of `CPU-Only`, `DED-GPU` and `ALL-GPU` is
//! expressed through coverage 0/0/1 plus system-specific search execution
//! (see [`HybridSearchEngine`](crate::HybridSearchEngine)); the one baseline
//! with a non-trivial *policy* is HedraRAG (paper §VI-D).

use crate::{AccessProfile, HitRateEstimator, PerfModel};

/// HedraRAG's throughput-balancing coverage choice.
///
/// "HedraRAG selects GPU-resident clusters by identifying the maximum KV
/// cache size that can sustain the throughput of the slower stage, either
/// the LLM or the retriever" (§VI-D). Concretely: pick the coverage ρ that
/// maximizes `min(µ_LLM(ρ), µ_search(ρ))`, where
///
/// - `µ_LLM(ρ)` falls linearly with the KV bytes consumed by the cache, and
/// - `µ_search(ρ)` is the retriever's batch throughput `B/τ_s(B, η̄(ρ))` at
///   a reference batch size.
///
/// The policy is *latency-blind* — exactly the paper's critique: "it does
/// not account for latency constraints that are critical for real-time
/// serving". When the LLM is the slower stage at every ρ, the maximizer is
/// ρ = 0 (all memory to the LLM), matching the paper's observation that
/// HedraRAG then "allocates the entire GPU memory to LLMs and performs
/// vector search on the CPU". Under retrieval-heavy setups (the paper's
/// √N-cluster, nprobe-6144 configuration) it parks most clusters on the
/// GPU — 73% in the paper — because retrieval throughput keeps rising with
/// coverage long after the latency target is blown.
///
/// # Examples
///
/// ```
/// use vlite_core::{baselines, AccessProfile, HitRateEstimator, PerfModel, SearchCostModel};
/// use vlite_sim::devices;
/// use vlite_workload::DatasetPreset;
///
/// let preset = DatasetPreset::tiny();
/// let wl = preset.workload(3);
/// let profile = AccessProfile::from_workload(&preset, &wl, 1_000, 3);
/// let est = HitRateEstimator::from_profile(&profile);
/// let cost = SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
/// let perf = PerfModel::from_cost_model(&cost, &[1, 4, 16]);
/// let rho = baselines::hedra_coverage(&perf, &est, &profile, 30.0, 64 << 30);
/// assert!((0.0..=1.0).contains(&rho));
/// ```
pub fn hedra_coverage(
    perf: &PerfModel,
    estimator: &HitRateEstimator,
    profile: &AccessProfile,
    mu_llm0: f64,
    kv_bytes_full: u64,
) -> f64 {
    // Reference batch for retrieval throughput (HedraRAG measures "batch
    // sizes below 64"; 16 is a representative operating point).
    const REF_BATCH: f64 = 16.0;
    let mu_search = |rho: f64| {
        let eta = estimator.mean_hit_rate(rho);
        let tau = perf.hybrid_latency(REF_BATCH, eta).max(1e-6);
        REF_BATCH / tau
    };
    let mu_llm = |rho: f64| {
        let kv = kv_bytes_full as f64;
        let remaining = ((kv - profile.bytes_at(rho) as f64) / kv).max(0.05);
        mu_llm0 * remaining
    };
    // Step 1: the balanced (slower-stage) throughput µ* — the max-min over
    // coverage. µ_search is non-decreasing and µ_LLM non-increasing in ρ,
    // so the max-min sits at their crossing (or at an endpoint).
    let mut best_score = f64::NEG_INFINITY;
    for step in 0..=200 {
        let rho = step as f64 / 200.0;
        best_score = best_score.max(mu_llm(rho).min(mu_search(rho)));
    }
    // Step 2: the KV cache is sized to *exactly sustain* µ* (the same
    // linear KV↔throughput interpolation as Algorithm 1 line 5); every
    // other byte becomes retrieval cache. In the LLM-bottleneck regime
    // µ* = µ_LLM0, the cache budget vanishes and all memory stays with the
    // LLM — the paper's observed behaviour.
    let kv_keep = kv_bytes_full as f64 * (best_score / mu_llm0).min(1.0);
    let cache_budget = (kv_bytes_full as f64 - kv_keep).max(0.0) as u64;
    // Step 3: largest coverage whose resident bytes fit the budget.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if profile.bytes_at(mid) <= cache_budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchCostModel;
    use vlite_sim::devices;
    use vlite_workload::DatasetPreset;

    struct Fix {
        perf: PerfModel,
        est: HitRateEstimator,
        profile: AccessProfile,
    }

    fn fixture() -> Fix {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(21);
        let profile = AccessProfile::from_workload(&preset, &wl, 2000, 21);
        let est = HitRateEstimator::from_profile(&profile);
        let cost =
            SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
        let perf = PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16, 32]);
        Fix { perf, est, profile }
    }

    #[test]
    fn slow_llm_pushes_coverage_to_zero() {
        // If the LLM is far slower than retrieval at every coverage, Hedra
        // gives all memory to the LLM (paper: "allocates the entire GPU
        // memory to LLMs").
        let f = fixture();
        let rho = hedra_coverage(&f.perf, &f.est, &f.profile, 0.5, 64 << 30);
        assert!(rho < 0.02, "rho={rho}");
    }

    #[test]
    fn fast_llm_pulls_cache_up() {
        let f = fixture();
        let slow = hedra_coverage(&f.perf, &f.est, &f.profile, 5.0, 64 << 30);
        let fast = hedra_coverage(&f.perf, &f.est, &f.profile, 5000.0, 64 << 30);
        assert!(fast >= slow, "fast={fast} slow={slow}");
        assert!(
            fast > 0.03,
            "a fast LLM should leave room for caching, rho={fast}"
        );
    }

    #[test]
    fn coverage_is_bounded() {
        let f = fixture();
        for mu in [0.1, 10.0, 100.0, 10_000.0] {
            let rho = hedra_coverage(&f.perf, &f.est, &f.profile, mu, 16 << 30);
            assert!((0.0..=1.0).contains(&rho));
        }
    }
}
