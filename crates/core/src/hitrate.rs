//! Tail-query hit-rate estimation (paper §IV-A2).
//!
//! Within a batch the *slowest* query bounds completion, and the slowest
//! query is the one with the fewest cached probes. The estimator therefore
//! models per-query hit rates as `Beta(α, β)` with method-of-moments
//! parameters, using the variance approximation
//! `σ² ≈ 4·σ²_max·η̄(1−η̄)` (validated in paper Fig. 8 right), and computes
//! the batch-minimum expectation by order statistics. Inverting the chain
//! `coverage → mean → Beta → E[η_min]` yields `HitRate2Coverage`, the
//! subroutine at the heart of the partitioning algorithm.

use crate::stats::{expected_batch_min, BetaDist};
use crate::AccessProfile;

/// Estimator mapping cache coverage to expected batch-minimum hit rates.
///
/// # Examples
///
/// ```
/// use vlite_core::{AccessProfile, HitRateEstimator};
/// use vlite_workload::DatasetPreset;
///
/// let preset = DatasetPreset::tiny();
/// let wl = preset.workload(5);
/// let profile = AccessProfile::from_workload(&preset, &wl, 2_000, 5);
/// let est = HitRateEstimator::from_profile(&profile);
/// // A batch's minimum is below the (single-query) mean.
/// assert!(est.eta_min(0.3, 8) <= est.mean_hit_rate(0.3) + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct HitRateEstimator {
    /// Monotone `coverage → mean hit rate` table (per-mille resolution).
    coverage_to_mean: Vec<f64>,
    sigma2_max: f64,
}

impl HitRateEstimator {
    /// Builds the estimator from a profiled access distribution, fitting
    /// `σ²_max` from the retained probe-set sample.
    pub fn from_profile(profile: &AccessProfile) -> HitRateEstimator {
        Self::with_sigma2_max(profile, profile.fit_sigma2_max())
    }

    /// Builds the estimator with an explicit `σ²_max`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < σ²_max < 0.25` (the Beta-feasible range).
    pub fn with_sigma2_max(profile: &AccessProfile, sigma2_max: f64) -> HitRateEstimator {
        assert!(
            sigma2_max > 0.0 && sigma2_max < 0.25,
            "sigma2_max must be in (0, 0.25), got {sigma2_max}"
        );
        const STEPS: usize = 1000;
        let coverage_to_mean = (0..=STEPS)
            .map(|i| profile.mean_hit_rate(i as f64 / STEPS as f64))
            .collect();
        HitRateEstimator {
            coverage_to_mean,
            sigma2_max,
        }
    }

    /// The fitted peak hit-rate variance.
    pub fn sigma2_max(&self) -> f64 {
        self.sigma2_max
    }

    /// Mean hit rate at `coverage` (interpolated from the profile).
    pub fn mean_hit_rate(&self, coverage: f64) -> f64 {
        let steps = self.coverage_to_mean.len() - 1;
        let x = coverage.clamp(0.0, 1.0) * steps as f64;
        let lo = x.floor() as usize;
        let hi = (lo + 1).min(steps);
        let frac = x - lo as f64;
        self.coverage_to_mean[lo] * (1.0 - frac) + self.coverage_to_mean[hi] * frac
    }

    /// Smallest coverage whose mean hit rate reaches `mean` (1.0 if even
    /// full coverage falls short, which only happens for `mean > 1`).
    pub fn coverage_for_mean(&self, mean: f64) -> f64 {
        let steps = self.coverage_to_mean.len() - 1;
        match self.coverage_to_mean.iter().position(|&m| m >= mean) {
            Some(0) => 0.0,
            Some(i) => {
                // Interpolate within the bracketing step.
                let (m0, m1) = (self.coverage_to_mean[i - 1], self.coverage_to_mean[i]);
                let frac = if m1 > m0 {
                    (mean - m0) / (m1 - m0)
                } else {
                    1.0
                };
                ((i - 1) as f64 + frac) / steps as f64
            }
            None => 1.0,
        }
    }

    /// The Beta distribution of per-query hit rates at `coverage` under the
    /// paper's variance model, or `None` at degenerate means (≈0 or ≈1).
    pub fn beta_at(&self, coverage: f64) -> Option<BetaDist> {
        let mean = self.mean_hit_rate(coverage);
        if !(1e-6..=1.0 - 1e-6).contains(&mean) {
            return None;
        }
        let var = 4.0 * self.sigma2_max * mean * (1.0 - mean);
        BetaDist::from_mean_variance(mean, var)
    }

    /// Expected minimum hit rate in a batch of `batch` queries at
    /// `coverage` — paper Eq. 2.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn eta_min(&self, coverage: f64, batch: usize) -> f64 {
        assert!(batch > 0, "batch size must be >= 1");
        match self.beta_at(coverage) {
            Some(dist) => expected_batch_min(&dist, batch),
            // Degenerate mean: no variance left to model.
            None => self.mean_hit_rate(coverage),
        }
    }

    /// `HitRate2Coverage` (paper §IV-A2): the smallest coverage whose
    /// expected batch-minimum hit rate reaches `eta_target` for batches of
    /// `batch`. Targets at or below zero need no cache; unreachable targets
    /// saturate to 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn hit_rate_to_coverage(&self, eta_target: f64, batch: usize) -> f64 {
        assert!(batch > 0, "batch size must be >= 1");
        if eta_target <= 0.0 {
            return 0.0;
        }
        if self.eta_min(1.0, batch) < eta_target {
            return 1.0;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.eta_min(mid, batch) >= eta_target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_workload::DatasetPreset;

    fn estimator() -> HitRateEstimator {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(5);
        let profile = AccessProfile::from_workload(&preset, &wl, 3000, 5);
        HitRateEstimator::from_profile(&profile)
    }

    #[test]
    fn eta_min_decreases_with_batch_size() {
        let est = estimator();
        let cov = 0.25;
        let mut prev = 1.0;
        for batch in [1usize, 2, 4, 8, 16] {
            let eta = est.eta_min(cov, batch);
            assert!(eta <= prev + 1e-12, "batch={batch}");
            prev = eta;
        }
    }

    #[test]
    fn eta_min_increases_with_coverage() {
        let est = estimator();
        let batch = 8;
        let mut prev: f64 = 0.0;
        for step in 1..=10 {
            let eta = est.eta_min(step as f64 / 10.0, batch);
            assert!(eta >= prev - 1e-6, "coverage step {step}: {eta} < {prev}");
            prev = prev.max(eta);
        }
    }

    #[test]
    fn eta_min_at_batch_one_is_the_mean() {
        let est = estimator();
        for &cov in &[0.1, 0.3, 0.6] {
            // E[min of 1 draw] = E[X] = mean; tolerance covers the Simpson
            // grid error at near-singular Beta shapes (α < 1).
            let diff = (est.eta_min(cov, 1) - est.mean_hit_rate(cov)).abs();
            assert!(diff < 2e-3, "cov={cov} diff={diff}");
        }
    }

    #[test]
    fn inversion_round_trips() {
        let est = estimator();
        for &cov in &[0.15, 0.3, 0.5] {
            for &batch in &[2usize, 8] {
                let eta = est.eta_min(cov, batch);
                let back = est.hit_rate_to_coverage(eta, batch);
                // The found coverage must reproduce at least the target η.
                assert!(
                    est.eta_min(back, batch) >= eta - 1e-6,
                    "cov={cov} batch={batch} back={back}"
                );
                assert!(back <= cov + 0.02, "inversion overshot: {back} vs {cov}");
            }
        }
    }

    #[test]
    fn trivial_and_unreachable_targets() {
        let est = estimator();
        assert_eq!(est.hit_rate_to_coverage(0.0, 4), 0.0);
        assert_eq!(est.hit_rate_to_coverage(-1.0, 4), 0.0);
        assert_eq!(est.hit_rate_to_coverage(1.5, 4), 1.0);
    }

    #[test]
    fn coverage_for_mean_round_trips() {
        let est = estimator();
        for &cov in &[0.1, 0.25, 0.5, 0.9] {
            let mean = est.mean_hit_rate(cov);
            let back = est.coverage_for_mean(mean);
            assert!(
                est.mean_hit_rate(back) >= mean - 1e-6,
                "cov={cov} mean={mean} back={back}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "sigma2_max")]
    fn invalid_sigma_rejected() {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(5);
        let profile = AccessProfile::from_workload(&preset, &wl, 500, 5);
        HitRateEstimator::with_sigma2_max(&profile, 0.3);
    }
}
