//! Adaptive runtime index update (paper §IV-B3, Fig. 9).
//!
//! The router monitors average hit rates, per-cluster access counts and SLO
//! attainment over a sliding window. When attainment drops below threshold
//! *and* observed hit rates diverge from expectation, an update cycle runs
//! in the background: re-profile → re-partition → re-split → load shards.
//! Full-shard (not per-cluster) updates avoid memory fragmentation; queries
//! for clusters on a shard being refreshed fall back to the CPU path, so
//! service never stops.

use std::time::Instant;

use vlite_sim::GpuSpec;
use vlite_workload::{ClusterWorkload, DatasetPreset};

use crate::{
    partition, AccessProfile, HitRateEstimator, IndexSplit, PartitionDecision, PartitionInput,
    PerfModel, SearchCostModel,
};

/// Thresholds for triggering an update cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateConfig {
    /// Trigger when windowed SLO attainment falls below this.
    pub slo_attainment_threshold: f64,
    /// ... and the observed mean hit rate diverges from the expected one
    /// by more than this (absolute).
    pub hit_rate_divergence: f64,
    /// Window length in requests before the counters reset.
    pub window_requests: usize,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        Self {
            slo_attainment_threshold: 0.9,
            hit_rate_divergence: 0.1,
            window_requests: 2000,
        }
    }
}

/// Windowed drift detector fed by the router at runtime.
///
/// # Examples
///
/// ```
/// use vlite_core::{DriftMonitor, UpdateConfig};
///
/// let mut monitor = DriftMonitor::new(UpdateConfig::default(), 0.8);
/// for _ in 0..100 {
///     monitor.observe(0.2, false); // low hit rates, SLO violations
/// }
/// assert!(monitor.should_update());
/// ```
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: UpdateConfig,
    expected_mean_hit: f64,
    requests: usize,
    slo_met: usize,
    hit_sum: f64,
}

impl DriftMonitor {
    /// Creates a monitor expecting the given mean hit rate.
    pub fn new(config: UpdateConfig, expected_mean_hit: f64) -> Self {
        Self {
            config,
            expected_mean_hit,
            requests: 0,
            slo_met: 0,
            hit_sum: 0.0,
        }
    }

    /// Records one served request.
    pub fn observe(&mut self, hit_rate: f64, met_slo: bool) {
        self.requests += 1;
        self.hit_sum += hit_rate;
        if met_slo {
            self.slo_met += 1;
        }
    }

    /// Requests observed in the current window.
    pub fn window_len(&self) -> usize {
        self.requests
    }

    /// Windowed SLO attainment.
    pub fn attainment(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.requests as f64
        }
    }

    /// Windowed mean hit rate.
    pub fn observed_mean_hit(&self) -> f64 {
        if self.requests == 0 {
            self.expected_mean_hit
        } else {
            self.hit_sum / self.requests as f64
        }
    }

    /// The paper's dual trigger: attainment below threshold *and* hit rate
    /// diverged from expectation. Requires a minimally filled window so a
    /// few early violations don't trigger a rebuild.
    pub fn should_update(&self) -> bool {
        self.requests >= self.config.window_requests.min(100)
            && self.attainment() < self.config.slo_attainment_threshold
            && (self.observed_mean_hit() - self.expected_mean_hit).abs()
                > self.config.hit_rate_divergence
    }

    /// Whether the window is full and should be reset ("for every few
    /// thousand requests, it periodically resets the counters").
    pub fn window_full(&self) -> bool {
        self.requests >= self.config.window_requests
    }

    /// Resets the window, optionally installing a new expectation.
    pub fn reset(&mut self, expected_mean_hit: Option<f64>) {
        if let Some(e) = expected_mean_hit {
            self.expected_mean_hit = e;
        }
        self.requests = 0;
        self.slo_met = 0;
        self.hit_sum = 0.0;
    }
}

/// Wall-clock/modeled timing of one rebuild cycle (Fig. 9 stages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildTiming {
    /// Re-profiling query access patterns (seconds).
    pub profiling: f64,
    /// Running the latency-bounded partitioning algorithm (seconds,
    /// measured wall clock).
    pub algorithm: f64,
    /// Generating the shard sub-indexes (seconds).
    pub splitting: f64,
    /// Loading shards onto GPUs over PCIe (seconds).
    pub loading: f64,
}

impl RebuildTiming {
    /// Total cycle time.
    pub fn total(&self) -> f64 {
        self.profiling + self.algorithm + self.splitting + self.loading
    }
}

/// The outcome of one update cycle.
#[derive(Debug)]
pub struct UpdateCycle {
    /// The refreshed access profile.
    pub profile: AccessProfile,
    /// The refreshed partitioning decision.
    pub decision: PartitionDecision,
    /// The refreshed split.
    pub split: IndexSplit,
    /// Stage timings.
    pub timing: RebuildTiming,
}

/// Runs one full update cycle against a (possibly drifted) workload:
/// re-profile, re-run Algorithm 1, re-split, and model the load time.
///
/// `n_profile_queries` is the calibration-query budget (the paper found
/// 0.5% of the training queries sufficient); `n_shards` the GPU shard
/// count.
///
/// # Panics
///
/// Panics if `n_shards == 0`.
#[allow(clippy::too_many_arguments)]
pub fn run_update_cycle(
    preset: &DatasetPreset,
    workload: &ClusterWorkload,
    cost: &SearchCostModel,
    perf: &PerfModel,
    input: &PartitionInput,
    gpu: &GpuSpec,
    n_profile_queries: usize,
    n_shards: usize,
    seed: u64,
) -> UpdateCycle {
    // Stage 1: profiling — replaying calibration queries through the
    // coarse quantizer. Cost: one CQ per query at single-query batch rate.
    let profile = AccessProfile::from_workload(preset, workload, n_profile_queries, seed);
    let profiling = n_profile_queries as f64 * cost.cq_per_query;

    // Stage 2: the partitioning algorithm — real wall-clock measurement.
    // vlite-allow(clock-discipline): measures the solver's real runtime to
    // cost the update cycle; there is no virtual stand-in for it.
    let started = Instant::now();
    let estimator = HitRateEstimator::from_profile(&profile);
    let decision = partition(input, perf, &estimator, &profile);
    let algorithm = started.elapsed().as_secs_f64();

    // Stage 3: splitting — rearranging hot clusters into contiguous shard
    // layouts; bytes moved at a third of host memory bandwidth (read +
    // write + bookkeeping).
    let split = IndexSplit::build(&profile, decision.coverage, n_shards);
    let moved = split.total_gpu_bytes() as f64;
    let splitting = moved / (100e9 / 3.0);

    // Stage 4: loading — each shard streams over PCIe; shards load
    // sequentially per the paper ("per-shard index generation and loading
    // take less than ten seconds", with service continuing via CPU
    // fallback).
    let loading = split
        .shard_bytes()
        .iter()
        .map(|&b| b as f64 / gpu.h2d_bw)
        .sum::<f64>();

    UpdateCycle {
        profile,
        decision,
        split,
        timing: RebuildTiming {
            profiling,
            algorithm,
            splitting,
            loading,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_sim::devices;

    #[test]
    fn monitor_triggers_only_on_joint_condition() {
        let cfg = UpdateConfig {
            window_requests: 100,
            ..UpdateConfig::default()
        };
        // Violations but hit rate as expected: no trigger.
        let mut m = DriftMonitor::new(cfg, 0.5);
        for _ in 0..150 {
            m.observe(0.5, false);
        }
        assert!(!m.should_update(), "hit rate matched expectation");
        // Violations and diverged hit rate: trigger.
        let mut m = DriftMonitor::new(cfg, 0.8);
        for _ in 0..150 {
            m.observe(0.3, false);
        }
        assert!(m.should_update());
        // Diverged hit rate but SLO fine: no trigger.
        let mut m = DriftMonitor::new(cfg, 0.8);
        for _ in 0..150 {
            m.observe(0.3, true);
        }
        assert!(!m.should_update());
    }

    #[test]
    fn monitor_reset_clears_window() {
        let mut m = DriftMonitor::new(UpdateConfig::default(), 0.7);
        for _ in 0..2500 {
            m.observe(0.1, false);
        }
        assert!(m.window_full());
        m.reset(Some(0.2));
        assert_eq!(m.window_len(), 0);
        assert_eq!(m.attainment(), 1.0);
        assert_eq!(m.observed_mean_hit(), 0.2);
    }

    #[test]
    fn update_cycle_tracks_drifted_hot_set() {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(31);
        let drifted = wl.rotated(preset.nlist / 2);
        let cost =
            SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
        let perf = PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16]);
        let input = PartitionInput::new(0.004, 20.0, 64 << 30);
        let before = run_update_cycle(
            &preset,
            &wl,
            &cost,
            &perf,
            &input,
            &devices::h100(),
            1000,
            2,
            31,
        );
        let after = run_update_cycle(
            &preset,
            &drifted,
            &cost,
            &perf,
            &input,
            &devices::h100(),
            1000,
            2,
            31,
        );
        // The refreshed split must chase the rotated hot region.
        let hot_before = before.profile.hot_set(0.1);
        let hot_after = after.profile.hot_set(0.1);
        let overlap = hot_before.iter().filter(|c| hot_after.contains(c)).count();
        assert!(
            overlap < hot_before.len() / 2,
            "update failed to move the hot set: overlap {overlap}/{}",
            hot_before.len()
        );
    }

    #[test]
    fn rebuild_finishes_within_a_minute_at_paper_scale() {
        // Fig. 9's headline: "all stages, from profiling to loading,
        // complete in under a minute".
        let preset = DatasetPreset::wiki_all();
        let wl = preset.workload(33);
        let cost =
            SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
        let perf = PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16]);
        let input = PartitionInput::new(0.150, 30.0, 256u64 << 30);
        let cycle = run_update_cycle(
            &preset,
            &wl,
            &cost,
            &perf,
            &input,
            &devices::h100(),
            5000,
            8,
            33,
        );
        assert!(
            cycle.timing.total() < 60.0,
            "rebuild took {:.1}s (profiling {:.1} algorithm {:.3} splitting {:.1} loading {:.1})",
            cycle.timing.total(),
            cycle.timing.profiling,
            cycle.timing.algorithm,
            cycle.timing.splitting,
            cycle.timing.loading
        );
        assert!(
            cycle.timing.algorithm < 60.0,
            "Algorithm 1 convergence (paper: < 1 min)"
        );
    }
}
