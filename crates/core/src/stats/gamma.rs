//! Log-gamma via the Lanczos approximation.

/// Lanczos coefficients for g = 7, n = 9 (double precision; the classic
/// Godfrey table, accurate to ~15 significant digits on the positive axis).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// # Panics
///
/// Panics if `x` is not finite and positive (the estimator only evaluates
/// Beta parameters, which are positive by construction).
///
/// # Examples
///
/// ```
/// use vlite_core::stats::ln_gamma;
///
/// assert!((ln_gamma(1.0)).abs() < 1e-12);          // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_factorials() {
        // Γ(n) = (n-1)!
        let mut factorial = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                factorial *= f64::from(n - 1);
            }
            let err = (ln_gamma(f64::from(n)) - factorial.ln()).abs();
            assert!(err < 1e-10, "Γ({n}) error {err}");
        }
    }

    #[test]
    fn half_integer_values() {
        // Γ(1/2) = √π.
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
        // Γ(3/2) = √π / 2.
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn recurrence_holds() {
        // Γ(x+1) = x Γ(x)  ⇔  lnΓ(x+1) − lnΓ(x) = ln x.
        for &x in &[0.3, 1.7, 4.2, 25.0, 300.0] {
            let lhs = ln_gamma(x + 1.0) - ln_gamma(x);
            assert!((lhs - x.ln()).abs() < 1e-9, "recurrence failed at {x}");
        }
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn non_positive_rejected() {
        ln_gamma(0.0);
    }
}
