//! The Beta distribution and the regularized incomplete beta function.

use super::ln_gamma;

/// A Beta(α, β) distribution on `[0, 1]`.
///
/// The paper uses it to model per-query cache hit rates (§IV-A2): "widely
/// used in Bayesian statistics for variables constrained to the `[0,1]`
/// range". Parameters come from the method of moments with the variance
/// approximation `σ² ≈ 4σ²_max·η̄(1−η̄)`, which makes the concentration
/// `ν = α + β = 1/(4σ²_max) − 1` a workload constant.
///
/// # Examples
///
/// ```
/// use vlite_core::stats::BetaDist;
///
/// let b = BetaDist::from_mean_variance(0.5, 0.05).unwrap();
/// assert!((b.mean() - 0.5).abs() < 1e-12);
/// assert!((b.cdf(0.5) - 0.5).abs() < 1e-9); // symmetric at the mean
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaDist {
    alpha: f64,
    beta: f64,
}

impl BetaDist {
    /// Creates a Beta(α, β).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not finite and positive.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be > 0, got {alpha}"
        );
        assert!(
            beta.is_finite() && beta > 0.0,
            "beta must be > 0, got {beta}"
        );
        Self { alpha, beta }
    }

    /// Method-of-moments fit from mean `m ∈ (0,1)` and variance `v`.
    ///
    /// Returns `None` when the pair is infeasible for a Beta distribution
    /// (requires `0 < v < m(1−m)`).
    pub fn from_mean_variance(m: f64, v: f64) -> Option<Self> {
        if !m.is_finite()
            || !v.is_finite()
            || m <= 0.0
            || m >= 1.0
            || v <= 0.0
            || v >= m * (1.0 - m)
        {
            return None;
        }
        let nu = m * (1.0 - m) / v - 1.0;
        Some(Self::new(m * nu, (1.0 - m) * nu))
    }

    /// Shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Distribution mean α/(α+β).
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Distribution variance αβ / ((α+β)²(α+β+1)).
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// Cumulative distribution function `F(x) = I_x(α, β)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN; values outside `[0,1]` clamp to the boundary.
    pub fn cdf(&self, x: f64) -> f64 {
        assert!(!x.is_nan(), "cdf of NaN");
        if x <= 0.0 {
            return 0.0;
        }
        if x >= 1.0 {
            return 1.0;
        }
        reg_inc_beta(self.alpha, self.beta, x)
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz continued
/// fraction (Numerical Recipes §6.4), with the symmetry transform for
/// convergence when `x > (a+1)/(a+b+2)`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction kernel (modified Lentz method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_special_case() {
        // Beta(1,1) is Uniform(0,1): F(x) = x.
        let b = BetaDist::new(1.0, 1.0);
        for &x in &[0.0, 0.1, 0.37, 0.5, 0.92, 1.0] {
            assert!((b.cdf(x) - x).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn closed_form_beta_2_1() {
        // Beta(2,1): F(x) = x².
        let b = BetaDist::new(2.0, 1.0);
        for &x in &[0.2, 0.5, 0.8] {
            assert!((b.cdf(x) - x * x).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let b = BetaDist::new(0.7, 2.3); // α < 1 exercises the singular edge
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let f = b.cdf(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev - 1e-12, "non-monotone at {x}");
            prev = f;
        }
        assert_eq!(b.cdf(0.0), 0.0);
        assert_eq!(b.cdf(1.0), 1.0);
    }

    #[test]
    fn symmetry_identity() {
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (8.0, 1.5, 0.45)] {
            let lhs = reg_inc_beta(a, b, x);
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn moments_round_trip() {
        let b = BetaDist::from_mean_variance(0.3, 0.02).unwrap();
        assert!((b.mean() - 0.3).abs() < 1e-12);
        assert!((b.variance() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn infeasible_moments_rejected() {
        // Variance must be < m(1−m).
        assert!(BetaDist::from_mean_variance(0.5, 0.25).is_none());
        assert!(BetaDist::from_mean_variance(0.5, 0.3).is_none());
        assert!(BetaDist::from_mean_variance(0.0, 0.1).is_none());
        assert!(BetaDist::from_mean_variance(1.0, 0.1).is_none());
    }

    #[test]
    fn paper_variance_model_concentration_is_constant() {
        // With σ² = 4σ²max·m(1−m), ν = α+β = 1/(4σ²max) − 1 for every mean.
        let sigma2_max = 0.03;
        let nu_expected = 1.0 / (4.0 * sigma2_max) - 1.0;
        for &m in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let v = 4.0 * sigma2_max * m * (1.0 - m);
            let b = BetaDist::from_mean_variance(m, v).unwrap();
            assert!(((b.alpha() + b.beta()) - nu_expected).abs() < 1e-9);
        }
    }
}
