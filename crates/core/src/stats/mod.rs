//! Numerical statistics for the hit-rate estimator.
//!
//! The paper models per-query cache hit rates with a Beta distribution and
//! needs its first-order statistic (minimum of a batch) — this module
//! provides the special functions involved, implemented from scratch:
//! Lanczos log-gamma, the regularized incomplete beta function via Lentz
//! continued fractions, the Beta distribution, batch-minimum expectations,
//! and piecewise-linear latency curve fitting.

mod beta;
mod gamma;
mod orderstat;
mod piecewise;

pub use beta::BetaDist;
pub use gamma::ln_gamma;
pub use orderstat::{expected_batch_min, expected_batch_min_empirical};
pub use piecewise::PiecewiseLinear;
