//! Piecewise-linear curves for latency-vs-batch-size models.
//!
//! "CPU search latency exhibits a piecewise linear relationship with batch
//! size" (paper §IV-A1, Fig. 8 left); the profiler fits these curves from
//! (batch, latency) samples and the partitioner evaluates/extrapolates
//! them.

/// A piecewise-linear function defined by sorted knots, linear between
/// knots and linearly extrapolated beyond the ends.
///
/// # Examples
///
/// ```
/// use vlite_core::stats::PiecewiseLinear;
///
/// let f = PiecewiseLinear::from_points(vec![(1.0, 10.0), (4.0, 40.0)]).unwrap();
/// assert_eq!(f.eval(2.0), 20.0);
/// assert_eq!(f.eval(8.0), 80.0); // extrapolates the last segment
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    /// Knots sorted by x, deduplicated.
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds a curve from `(x, y)` samples. Samples are sorted by `x`;
    /// duplicate `x` values are averaged.
    ///
    /// Returns `None` if fewer than one sample is provided or any value is
    /// not finite.
    pub fn from_points(mut samples: Vec<(f64, f64)>) -> Option<Self> {
        if samples.is_empty()
            || samples
                .iter()
                .any(|(x, y)| !x.is_finite() || !y.is_finite())
        {
            return None;
        }
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(samples.len());
        let mut i = 0;
        while i < samples.len() {
            let x = samples[i].0;
            let mut sum = 0.0;
            let mut n = 0usize;
            while i < samples.len() && samples[i].0 == x {
                sum += samples[i].1;
                n += 1;
                i += 1;
            }
            points.push((x, sum / n as f64));
        }
        Some(Self { points })
    }

    /// The knots, sorted by x.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates the curve at `x` (linear interpolation between knots,
    /// linear extrapolation outside, constant for single-knot curves).
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if pts.len() == 1 {
            return pts[0].1;
        }
        // Select the segment: clamp to first/last for extrapolation.
        let seg = match pts.binary_search_by(|p| p.0.total_cmp(&x)) {
            Ok(i) => return pts[i].1,
            Err(0) => (pts[0], pts[1]),
            Err(i) if i >= pts.len() => (pts[pts.len() - 2], pts[pts.len() - 1]),
            Err(i) => (pts[i - 1], pts[i]),
        };
        let ((x0, y0), (x1, y1)) = seg;
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Inverse query: smallest `x ≥ x_min` with `eval(x) ≥ y`, assuming the
    /// curve is non-decreasing. Returns `None` if the curve never reaches
    /// `y` within `x_max`.
    pub fn inverse_at_least(&self, y: f64, x_min: f64, x_max: f64) -> Option<f64> {
        if self.eval(x_max) < y {
            return None;
        }
        if self.eval(x_min) >= y {
            return Some(x_min);
        }
        let (mut lo, mut hi) = (x_min, x_max);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.eval(mid) >= y {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PiecewiseLinear {
        PiecewiseLinear::from_points(vec![(1.0, 5.0), (2.0, 6.0), (8.0, 30.0)]).unwrap()
    }

    #[test]
    fn interpolates_knots_exactly() {
        let f = ramp();
        assert_eq!(f.eval(1.0), 5.0);
        assert_eq!(f.eval(2.0), 6.0);
        assert_eq!(f.eval(8.0), 30.0);
    }

    #[test]
    fn interpolates_between_knots() {
        let f = ramp();
        assert_eq!(f.eval(5.0), 18.0); // midpoint of (2,6)-(8,30)
    }

    #[test]
    fn extrapolates_both_ends() {
        let f = ramp();
        assert_eq!(f.eval(0.0), 4.0); // slope 1 below
        assert_eq!(f.eval(10.0), 38.0); // slope 4 above
    }

    #[test]
    fn duplicate_x_samples_average() {
        let f = PiecewiseLinear::from_points(vec![(1.0, 10.0), (1.0, 20.0), (2.0, 2.0)]).unwrap();
        assert_eq!(f.eval(1.0), 15.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let f = PiecewiseLinear::from_points(vec![(8.0, 30.0), (1.0, 5.0), (2.0, 6.0)]).unwrap();
        assert_eq!(f.eval(5.0), 18.0);
    }

    #[test]
    fn single_point_is_constant() {
        let f = PiecewiseLinear::from_points(vec![(3.0, 7.0)]).unwrap();
        assert_eq!(f.eval(-10.0), 7.0);
        assert_eq!(f.eval(100.0), 7.0);
    }

    #[test]
    fn inverse_finds_crossing() {
        let f = ramp();
        let x = f.inverse_at_least(18.0, 1.0, 8.0).unwrap();
        assert!((x - 5.0).abs() < 1e-9);
        assert!(f.inverse_at_least(1000.0, 1.0, 8.0).is_none());
        assert_eq!(f.inverse_at_least(1.0, 1.0, 8.0), Some(1.0));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(PiecewiseLinear::from_points(vec![]).is_none());
        assert!(PiecewiseLinear::from_points(vec![(f64::NAN, 1.0)]).is_none());
    }
}
