//! Expected minimum of a batch of i.i.d. hit rates (first-order statistic).
//!
//! The paper's Eq. 2 integrates `B·x·f(x)·(1−F(x))^{B−1}`. This module uses
//! the equivalent *survival form* for a non-negative variable on `[0,1]`:
//!
//! `E[min of B draws] = ∫₀¹ (1 − F(x))^B dx`
//!
//! which needs only the CDF — no density — and therefore stays numerically
//! stable when the Beta shape parameters fall below 1 (pdf endpoint
//! singularities), which happens for small mean hit rates under the paper's
//! variance model.

use super::BetaDist;

/// Expected minimum hit rate over a batch of `batch` i.i.d. draws from
/// `dist`, via composite Simpson integration of the survival function.
///
/// # Panics
///
/// Panics if `batch == 0`.
///
/// # Examples
///
/// ```
/// use vlite_core::stats::{expected_batch_min, BetaDist};
///
/// let d = BetaDist::new(1.0, 1.0); // Uniform(0,1)
/// // E[min of B uniforms] = 1/(B+1).
/// assert!((expected_batch_min(&d, 1) - 0.5).abs() < 1e-6);
/// assert!((expected_batch_min(&d, 9) - 0.1).abs() < 1e-6);
/// ```
pub fn expected_batch_min(dist: &BetaDist, batch: usize) -> f64 {
    assert!(batch > 0, "batch size must be >= 1");
    let b = batch as f64;
    // Composite Simpson on a fixed grid. The integrand is bounded but its
    // derivative spikes near 0 when the Beta shape α < 1 (small mean hit
    // rates under the paper's variance model), so use a dense grid.
    const PANELS: usize = 2048;
    let h = 1.0 / PANELS as f64;
    let survival_pow = |x: f64| (1.0 - dist.cdf(x)).max(0.0).powf(b);
    let mut sum = survival_pow(0.0) + survival_pow(1.0);
    for i in 1..PANELS {
        let x = i as f64 * h;
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * survival_pow(x);
    }
    (sum * h / 3.0).clamp(0.0, 1.0)
}

/// Empirical counterpart: expected minimum of `batch` draws estimated from
/// observed per-query hit-rate samples by bootstrap-free direct averaging
/// over consecutive windows.
///
/// Used to validate the Beta approximation against measured hit rates
/// (paper Fig. 10 right).
///
/// # Panics
///
/// Panics if `samples` is empty or `batch == 0`.
pub fn expected_batch_min_empirical(samples: &[f64], batch: usize) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    assert!(batch > 0, "batch size must be >= 1");
    let mut total = 0.0;
    let mut windows = 0usize;
    for window in samples.chunks(batch) {
        if window.len() < batch {
            break;
        }
        total += window.iter().copied().fold(f64::INFINITY, f64::min);
        windows += 1;
    }
    if windows == 0 {
        // Fewer samples than one batch: the min of all of them is the best
        // available estimate.
        return samples.iter().copied().fold(f64::INFINITY, f64::min);
    }
    total / windows as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_closed_form() {
        let d = BetaDist::new(1.0, 1.0);
        for batch in [1usize, 2, 4, 8, 16] {
            let expected = 1.0 / (batch as f64 + 1.0);
            let got = expected_batch_min(&d, batch);
            assert!(
                (got - expected).abs() < 1e-6,
                "B={batch}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn batch_of_one_is_the_mean() {
        let d = BetaDist::new(3.0, 2.0);
        assert!((expected_batch_min(&d, 1) - d.mean()).abs() < 1e-6);
    }

    #[test]
    fn decreasing_in_batch_size() {
        let d = BetaDist::from_mean_variance(0.6, 0.03).unwrap();
        let mut prev = 1.0;
        for batch in [1usize, 2, 4, 8, 16, 32] {
            let m = expected_batch_min(&d, batch);
            assert!(m < prev + 1e-12, "min must fall with batch size");
            assert!(m > 0.0);
            prev = m;
        }
    }

    #[test]
    fn stable_for_shape_below_one() {
        // Mean 0.05 under the paper's variance model ⇒ α < 1 (singular pdf).
        let sigma2_max = 0.03;
        let m = 0.05;
        let d = BetaDist::from_mean_variance(m, 4.0 * sigma2_max * m * (1.0 - m)).unwrap();
        assert!(d.alpha() < 1.0);
        let e = expected_batch_min(&d, 8);
        assert!(e.is_finite() && (0.0..m).contains(&e));
    }

    #[test]
    fn empirical_matches_analytic_for_uniform() {
        // Pseudo-random Uniform(0,1) samples. (A low-discrepancy sequence
        // would be wrong here: stratified windows bias the minimum low.)
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let samples: Vec<f64> = (0..40_000).map(|_| rng.random::<f64>()).collect();
        let emp = expected_batch_min_empirical(&samples, 8);
        let ana = expected_batch_min(&BetaDist::new(1.0, 1.0), 8);
        assert!((emp - ana).abs() < 0.01, "emp={emp} ana={ana}");
    }

    #[test]
    fn empirical_short_sample_fallback() {
        let samples = [0.4, 0.9];
        assert_eq!(expected_batch_min_empirical(&samples, 10), 0.4);
    }
}
