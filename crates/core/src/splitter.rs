//! Index splitter: hot clusters → GPU shards + mapping tables (§IV-A4).
//!
//! "The splitter first identifies the hot clusters based on the access
//! profile and the target cache coverage ρ. These hot clusters are then
//! sorted by size and distributed to GPU shards in a round-robin fashion to
//! balance memory usage across sub-indexes. Alongside [...] the splitter
//! generates mapping tables [encoding] the correspondence between original
//! cluster IDs and their assigned shard as well as the remapped local
//! cluster IDs."

use crate::AccessProfile;

/// Where a cluster lives after splitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Cold cluster, scanned by the CPU.
    Cpu,
    /// Hot cluster resident on a GPU shard, with its remapped local id.
    Gpu {
        /// Shard (GPU) index.
        shard: u16,
        /// Cluster id local to the shard's sub-index.
        local: u32,
    },
}

/// The mapping tables produced by the splitter.
///
/// # Examples
///
/// ```
/// use vlite_core::{AccessProfile, IndexSplit};
/// use vlite_workload::DatasetPreset;
///
/// let preset = DatasetPreset::tiny();
/// let wl = preset.workload(9);
/// let profile = AccessProfile::from_workload(&preset, &wl, 1_000, 9);
/// let split = IndexSplit::build(&profile, 0.2, 4);
/// assert_eq!(split.n_shards(), 4);
/// // Shard byte loads are balanced by size-sorted round-robin packing.
/// let loads = split.shard_bytes();
/// let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
/// assert!(*max as f64 <= *min as f64 * 1.5 + 1e4);
/// ```
#[derive(Debug, Clone)]
pub struct IndexSplit {
    placement: Vec<Placement>,
    shard_clusters: Vec<Vec<u32>>,
    shard_bytes: Vec<u64>,
    shard_vectors: Vec<u64>,
    coverage: f64,
}

impl IndexSplit {
    /// Splits the hot set at `coverage` across `n_shards` GPU shards.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0` or exceeds `u16::MAX`.
    pub fn build(profile: &AccessProfile, coverage: f64, n_shards: usize) -> IndexSplit {
        assert!(n_shards > 0, "need at least one shard");
        assert!(n_shards <= usize::from(u16::MAX), "too many shards");
        let mut hot = profile.hot_set(coverage);
        // Sort by size descending (ties by id for determinism).
        hot.sort_by(|&a, &b| profile.size(b).cmp(&profile.size(a)).then(a.cmp(&b)));
        let mut placement = vec![Placement::Cpu; profile.nlist()];
        let mut shard_clusters: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
        let mut shard_bytes = vec![0u64; n_shards];
        let mut shard_vectors = vec![0u64; n_shards];
        for (i, &cluster) in hot.iter().enumerate() {
            let shard = i % n_shards;
            let local = shard_clusters[shard].len() as u32;
            placement[cluster as usize] = Placement::Gpu {
                shard: shard as u16,
                local,
            };
            shard_clusters[shard].push(cluster);
            shard_bytes[shard] += profile.bytes_of(cluster);
            shard_vectors[shard] += profile.size(cluster);
        }
        IndexSplit {
            placement,
            shard_clusters,
            shard_bytes,
            shard_vectors,
            coverage,
        }
    }

    /// The coverage this split was built for.
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// Number of GPU shards.
    pub fn n_shards(&self) -> usize {
        self.shard_clusters.len()
    }

    /// Placement of a cluster.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn placement(&self, cluster: u32) -> Placement {
        self.placement[cluster as usize]
    }

    /// Whether a cluster is GPU-resident.
    pub fn is_hot(&self, cluster: u32) -> bool {
        matches!(self.placement[cluster as usize], Placement::Gpu { .. })
    }

    /// Global cluster ids resident on one shard, in local-id order.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_clusters(&self, shard: usize) -> &[u32] {
        &self.shard_clusters[shard]
    }

    /// Index bytes resident per shard.
    pub fn shard_bytes(&self) -> &[u64] {
        &self.shard_bytes
    }

    /// Vector counts resident per shard.
    pub fn shard_vectors(&self) -> &[u64] {
        &self.shard_vectors
    }

    /// Total GPU-resident bytes.
    pub fn total_gpu_bytes(&self) -> u64 {
        self.shard_bytes.iter().sum()
    }

    /// Number of hot clusters.
    pub fn hot_count(&self) -> usize {
        self.shard_clusters.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_workload::DatasetPreset;

    fn profile() -> AccessProfile {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(11);
        AccessProfile::from_workload(&preset, &wl, 2000, 11)
    }

    #[test]
    fn mapping_is_a_bijection_onto_shard_slots() {
        let p = profile();
        let split = IndexSplit::build(&p, 0.25, 4);
        // Every GPU placement maps to exactly the slot the shard lists.
        let mut seen = 0usize;
        for cluster in 0..p.nlist() as u32 {
            if let Placement::Gpu { shard, local } = split.placement(cluster) {
                assert_eq!(
                    split.shard_clusters(usize::from(shard))[local as usize],
                    cluster
                );
                seen += 1;
            }
        }
        assert_eq!(seen, split.hot_count());
        assert_eq!(seen, p.hot_set(0.25).len());
    }

    #[test]
    fn byte_loads_are_balanced() {
        let p = profile();
        let split = IndexSplit::build(&p, 0.3, 3);
        let loads = split.shard_bytes();
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(max <= min * 1.35 + 1024.0, "imbalanced shards: {loads:?}");
    }

    #[test]
    fn zero_coverage_leaves_everything_on_cpu() {
        let p = profile();
        let split = IndexSplit::build(&p, 0.0, 2);
        assert_eq!(split.hot_count(), 0);
        assert_eq!(split.total_gpu_bytes(), 0);
        assert!((0..p.nlist() as u32).all(|c| !split.is_hot(c)));
    }

    #[test]
    fn full_coverage_moves_everything_to_gpus() {
        let p = profile();
        let split = IndexSplit::build(&p, 1.0, 2);
        assert_eq!(split.hot_count(), p.nlist());
        assert_eq!(split.total_gpu_bytes(), p.total_bytes());
    }

    #[test]
    fn total_gpu_bytes_matches_profile_prefix() {
        let p = profile();
        for &cov in &[0.1, 0.2, 0.5] {
            let split = IndexSplit::build(&p, cov, 4);
            assert_eq!(split.total_gpu_bytes(), p.bytes_at(cov));
        }
    }

    #[test]
    fn single_shard_takes_all_hot_clusters() {
        let p = profile();
        let split = IndexSplit::build(&p, 0.2, 1);
        assert_eq!(split.shard_clusters(0).len(), split.hot_count());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        IndexSplit::build(&profile(), 0.2, 0);
    }
}
