//! Virtual-time hybrid search engine (§IV-B).
//!
//! Models the distributed retrieval pipeline for every serving system:
//!
//! - **CPU-Only** — coarse quantization + full LUT stage on the host; the
//!   batch returns as a whole.
//! - **DED-GPU** — the whole search on one dedicated GPU.
//! - **ALL-GPU** — `IndexIVFShards` semantics: every shard receives the
//!   *full* probe list and pays kernel-launch cost even for non-resident
//!   clusters; all retrieval GPUs are occupied.
//! - **vLiteRAG** — CPU coarse quantization, pruned GPU shard scans of hot
//!   clusters hidden under the CPU's scan of cold clusters (Eq. 1), with
//!   the dynamic dispatcher forwarding early-completing queries.
//! - **HedraRAG** — GPU caching without pruned routing or dispatching.
//!
//! Batching is on-demand and dynamic: a batch launches the moment the
//! engine is idle and absorbs everything queued (paper §VI-B: "retrieval
//! requests are served immediately after the previous search completes,
//! allowing throughput to scale with arrival rate through adaptive batch
//! sizing").

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vlite_sim::{SimDuration, SimTime};
use vlite_workload::ClusterWorkload;

use crate::{AccessProfile, Router, SearchCostModel, SystemKind};

/// A retrieval request waiting for service.
#[derive(Debug, Clone, Copy)]
pub struct SearchRequest {
    /// Request id (shared with the LLM stage).
    pub id: u64,
    /// Arrival time at the retrieval queue.
    pub arrival: SimTime,
}

/// One query's outcome within a planned batch.
#[derive(Debug, Clone, Copy)]
pub struct QueryPlan {
    /// Request id.
    pub id: u64,
    /// Completion offset from batch start.
    pub done_offset: SimDuration,
    /// The query's cache hit rate (probe-count based).
    pub hit_rate: f64,
}

/// The fully scheduled execution of one search batch.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// When the batch started.
    pub started_at: SimTime,
    /// Batch size.
    pub batch: usize,
    /// Per-query completions (order = service order).
    pub queries: Vec<QueryPlan>,
    /// When the engine becomes free again.
    pub busy_until: SimTime,
    /// Minimum hit rate within the batch (the tail query).
    pub min_hit_rate: f64,
    /// Retrieval busy seconds charged to each GPU: `(gpu index, seconds)`.
    pub gpu_busy: Vec<(usize, f64)>,
}

/// Aggregate search-engine statistics.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Batch sizes of all executed batches.
    pub batch_sizes: Vec<usize>,
    /// Per-batch minimum hit rates.
    pub min_hit_rates: Vec<f64>,
    /// Per-batch total latencies (seconds).
    pub batch_latencies: Vec<f64>,
}

impl SearchStats {
    /// Mean batch size over the run.
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            0.0
        } else {
            self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
        }
    }
}

/// The engine.
///
/// Owns the per-cluster geometry it needs (sizes), the cost model, the
/// router and a deterministic RNG for probe-set draws.
#[derive(Debug)]
pub struct HybridSearchEngine {
    kind: SystemKind,
    cost: SearchCostModel,
    workload: ClusterWorkload,
    sizes: Vec<u64>,
    router: Router,
    dispatcher: bool,
    shard_gpus: Vec<usize>,
    queue: VecDeque<SearchRequest>,
    busy_until: Option<SimTime>,
    max_batch: usize,
    rng: StdRng,
    stats: SearchStats,
    /// Cumulative retrieval busy seconds per GPU (index = GPU id).
    gpu_busy_total: Vec<f64>,
    /// How strongly retrieval kernels contend with co-located LLM kernels.
    /// Pruned vLiteRAG launches are small and stream-isolated (§IV-B1);
    /// unpruned `IndexIVFShards` launches hammer the SM scheduler.
    contention_coeff: f64,
}

/// Bulk-merge cost per query when the dispatcher is disabled (results are
/// merged and re-ranked at batch end instead of overlapping the scan).
const BULK_MERGE_PER_QUERY: f64 = 0.3e-3;

impl HybridSearchEngine {
    /// Creates an engine.
    ///
    /// `shard_gpus[s]` is the node GPU hosting shard `s`; `n_gpus` sizes
    /// the duty-cycle tracker.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: SystemKind,
        cost: SearchCostModel,
        workload: ClusterWorkload,
        profile: &AccessProfile,
        router: Router,
        dispatcher: bool,
        shard_gpus: Vec<usize>,
        n_gpus: usize,
        seed: u64,
    ) -> Self {
        let sizes = (0..profile.nlist() as u32)
            .map(|c| profile.size(c))
            .collect();
        let contention_coeff = match kind {
            // Pruned launches on dedicated streams: mild SM sharing.
            SystemKind::VectorLite => 0.3,
            // Full-probe `IndexIVFShards` launches on every shard: each
            // query-cluster pair takes a thread block and shared-memory
            // staging whether or not the cluster is resident (§IV-B1), so
            // the scheduling pressure on co-located LLM kernels far
            // exceeds the raw duty cycle.
            SystemKind::AllGpu | SystemKind::HedraRag => 4.0,
            // No co-location.
            SystemKind::CpuOnly | SystemKind::DedGpu => 0.0,
        };
        Self {
            kind,
            cost,
            workload,
            sizes,
            router,
            dispatcher,
            shard_gpus,
            queue: VecDeque::new(),
            busy_until: None,
            max_batch: 64,
            rng: StdRng::seed_from_u64(seed ^ 0x5ea7c4),
            stats: SearchStats::default(),
            gpu_busy_total: vec![0.0; n_gpus],
            contention_coeff,
        }
    }

    /// Queued (not yet started) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a batch is in flight.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busy_until.is_some_and(|t| t > now)
    }

    /// Run statistics.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Retrieval duty cycle of one GPU at wall-clock time `now`: cumulative
    /// retrieval-busy seconds over elapsed virtual time, in `[0, 1]`.
    pub fn gpu_duty(&self, gpu: usize, now: SimTime) -> f64 {
        let elapsed = now.as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        (self.gpu_busy_total.get(gpu).copied().unwrap_or(0.0) / elapsed).min(1.0)
    }

    /// The contention coefficient scaling duty into LLM step inflation.
    pub fn contention_coeff(&self) -> f64 {
        self.contention_coeff
    }

    /// Replaces the router (adaptive runtime update installing a new
    /// split).
    pub fn install_router(&mut self, router: Router) {
        self.router = router;
    }

    /// The router currently in use.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Enqueues a request.
    pub fn enqueue(&mut self, request: SearchRequest) {
        self.queue.push_back(request);
    }

    /// Starts a batch at `now` if the engine is idle and work is queued.
    pub fn try_start_batch(&mut self, now: SimTime) -> Option<BatchPlan> {
        if self.is_busy(now) || self.queue.is_empty() {
            return None;
        }
        let take = self.queue.len().min(self.max_batch);
        let requests: Vec<SearchRequest> = self.queue.drain(..take).collect();
        let plan = self.plan_batch(now, &requests);
        self.busy_until = Some(plan.busy_until);
        self.stats.batch_sizes.push(plan.batch);
        self.stats.min_hit_rates.push(plan.min_hit_rate);
        self.stats
            .batch_latencies
            .push((plan.busy_until - plan.started_at).as_secs_f64());
        // Accumulate retrieval busy time per GPU (duty = busy / wall time).
        for &(gpu, secs) in &plan.gpu_busy {
            self.gpu_busy_total[gpu] += secs;
        }
        Some(plan)
    }

    /// Plans the execution of one batch (pure function of the drawn probe
    /// sets and the system kind).
    fn plan_batch(&mut self, now: SimTime, requests: &[SearchRequest]) -> BatchPlan {
        let b = requests.len();
        let bf = b as f64;
        let n_shards = self.router.split().n_shards();

        // Draw probe sets and route them.
        let mut routed = Vec::with_capacity(b);
        for _ in 0..b {
            let probes = self.workload.gen_probe_set(&mut self.rng);
            routed.push(self.router.route(&probes));
        }
        let hit_rates: Vec<f64> = routed.iter().map(|r| r.hit_rate()).collect();
        let min_hit = hit_rates.iter().copied().fold(1.0, f64::min);

        let scan_vectors = |clusters: &[u32]| -> f64 {
            clusters
                .iter()
                .map(|&c| self.sizes[c as usize] as f64)
                .sum()
        };

        let mut gpu_busy: Vec<(usize, f64)> = Vec::new();
        let mut queries = Vec::with_capacity(b);
        let busy_until;

        match self.kind {
            SystemKind::CpuOnly => {
                // Vanilla fast scan: same physical per-cluster accounting as
                // the hybrid path (all probes are CPU probes at coverage 0),
                // batch returned as a whole.
                let scan: f64 = routed
                    .iter()
                    .map(|r| self.cost.cpu_scan_secs(scan_vectors(&r.cpu_probes)))
                    .sum();
                let total =
                    self.cost.t_cq(bf) + self.cost.lut_base + scan + BULK_MERGE_PER_QUERY * bf;
                busy_until = now + SimDuration::from_secs_f64(total);
                for r in requests {
                    queries.push(QueryPlan {
                        id: r.id,
                        done_offset: SimDuration::from_secs_f64(total),
                        hit_rate: 0.0,
                    });
                }
            }
            SystemKind::DedGpu => {
                let total = self.cost.dedicated_gpu_total(bf);
                busy_until = now + SimDuration::from_secs_f64(total);
                let gpu = self.shard_gpus.first().copied().unwrap_or(0);
                gpu_busy.push((gpu, total));
                for r in requests {
                    queries.push(QueryPlan {
                        id: r.id,
                        done_offset: SimDuration::from_secs_f64(total),
                        hit_rate: 1.0,
                    });
                }
            }
            SystemKind::AllGpu => {
                // Unpruned IndexIVFShards: every shard pays launch cost for
                // the full probe list of every query plus its resident scan.
                let mut worst_shard = 0.0f64;
                for shard in 0..n_shards {
                    let mut t = self.cost.gpu_base;
                    for routed_q in &routed {
                        let vectors = scan_vectors(&routed_q.shard_probes_global[shard]);
                        t += self.cost.gpu_query_secs(self.cost.nprobe as f64, vectors);
                    }
                    let gpu = self.shard_gpus.get(shard).copied().unwrap_or(shard);
                    gpu_busy.push((gpu, t));
                    worst_shard = worst_shard.max(t);
                }
                // GPU-side coarse quantization, cheap.
                let total = self.cost.cq_per_query * 0.1 * bf + worst_shard;
                busy_until = now + SimDuration::from_secs_f64(total);
                for r in requests {
                    queries.push(QueryPlan {
                        id: r.id,
                        done_offset: SimDuration::from_secs_f64(total),
                        hit_rate: 1.0,
                    });
                }
            }
            SystemKind::VectorLite | SystemKind::HedraRag => {
                let pruned = self.kind == SystemKind::VectorLite;
                let t_cq = self.cost.t_cq(bf);
                // GPU shards scan concurrently after coarse quantization.
                let mut gpu_all_done = 0.0f64;
                for shard in 0..n_shards {
                    let mut t = if self.router.split().hot_count() > 0 {
                        self.cost.gpu_base
                    } else {
                        0.0
                    };
                    for routed_q in &routed {
                        let resident = &routed_q.shard_probes_global[shard];
                        if resident.is_empty() && pruned {
                            continue;
                        }
                        let launched = if pruned {
                            resident.len() as f64
                        } else {
                            self.cost.nprobe as f64
                        };
                        t += self.cost.gpu_query_secs(launched, scan_vectors(resident));
                    }
                    if t > 0.0 {
                        let gpu = self.shard_gpus.get(shard).copied().unwrap_or(shard);
                        gpu_busy.push((gpu, t));
                        gpu_all_done = gpu_all_done.max(t);
                    }
                }
                let gpu_all_done = t_cq + gpu_all_done;
                // CPU scans the cold probes query-by-query; prefix sums give
                // per-query CPU completion offsets. LUT construction is
                // per-probed-cluster (residual PQ), so the CPU only builds
                // tables for its *cold* share — the fixed LUT cost scales
                // with the batch's miss fraction, exactly as Eq. 1 models.
                let avg_hit: f64 = hit_rates.iter().sum::<f64>() / bf;
                let mut cpu_cursor = t_cq + self.cost.lut_base * (1.0 - avg_hit);
                let mut offsets = Vec::with_capacity(b);
                for routed_q in &routed {
                    cpu_cursor += self.cost.cpu_scan_secs(scan_vectors(&routed_q.cpu_probes));
                    offsets.push(cpu_cursor);
                }
                let batch_end = cpu_cursor.max(gpu_all_done);
                if self.dispatcher {
                    // A query leaves once its own CPU probes are done and
                    // all GPU flags are set (§IV-B2).
                    for (i, r) in requests.iter().enumerate() {
                        let done = offsets[i].max(gpu_all_done);
                        queries.push(QueryPlan {
                            id: r.id,
                            done_offset: SimDuration::from_secs_f64(done),
                            hit_rate: hit_rates[i],
                        });
                    }
                    busy_until = now + SimDuration::from_secs_f64(batch_end);
                } else {
                    let total = batch_end + BULK_MERGE_PER_QUERY * bf;
                    busy_until = now + SimDuration::from_secs_f64(total);
                    for (i, r) in requests.iter().enumerate() {
                        queries.push(QueryPlan {
                            id: r.id,
                            done_offset: SimDuration::from_secs_f64(total),
                            hit_rate: hit_rates[i],
                        });
                    }
                }
            }
        }

        BatchPlan {
            started_at: now,
            batch: b,
            queries,
            busy_until,
            min_hit_rate: min_hit,
            gpu_busy,
        }
    }

    /// Marks the in-flight batch finished (called by the pipeline when the
    /// batch-done event fires).
    pub fn finish_batch(&mut self, now: SimTime) {
        if self.busy_until.is_some_and(|t| t <= now) {
            self.busy_until = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexSplit, RagConfig, RagSystem};

    fn engine_for(kind: SystemKind, dispatcher: bool) -> HybridSearchEngine {
        let mut config = RagConfig::tiny(kind);
        config.dispatcher = dispatcher;
        let system = RagSystem::build(config);
        HybridSearchEngine::new(
            kind,
            system.cost.clone(),
            system.workload.clone(),
            &system.profile,
            Router::new(system.router.split().clone()),
            dispatcher,
            system.shard_gpus.clone(),
            system.config.node.n_gpus,
            7,
        )
    }

    fn requests(n: usize) -> Vec<SearchRequest> {
        (0..n as u64)
            .map(|id| SearchRequest {
                id,
                arrival: SimTime::ZERO,
            })
            .collect()
    }

    fn run_one_batch(engine: &mut HybridSearchEngine, n: usize) -> BatchPlan {
        for r in requests(n) {
            engine.enqueue(r);
        }
        engine
            .try_start_batch(SimTime::ZERO)
            .expect("idle engine starts")
    }

    #[test]
    fn batch_absorbs_all_queued_requests() {
        let mut engine = engine_for(SystemKind::VectorLite, true);
        let plan = run_one_batch(&mut engine, 9);
        assert_eq!(plan.batch, 9);
        assert_eq!(plan.queries.len(), 9);
        assert_eq!(engine.queue_len(), 0);
    }

    #[test]
    fn busy_engine_does_not_start_another_batch() {
        let mut engine = engine_for(SystemKind::VectorLite, true);
        let plan = run_one_batch(&mut engine, 4);
        engine.enqueue(SearchRequest {
            id: 99,
            arrival: SimTime::ZERO,
        });
        assert!(engine.try_start_batch(SimTime::ZERO).is_none());
        engine.finish_batch(plan.busy_until);
        assert!(engine.try_start_batch(plan.busy_until).is_some());
    }

    #[test]
    fn vectorlite_beats_cpu_only_on_batch_latency() {
        let mut cpu = engine_for(SystemKind::CpuOnly, false);
        let mut vlite = engine_for(SystemKind::VectorLite, true);
        let b = 8;
        let t_cpu = run_one_batch(&mut cpu, b).busy_until;
        let t_vlite = run_one_batch(&mut vlite, b).busy_until;
        assert!(
            t_vlite < t_cpu,
            "vLiteRAG ({t_vlite}) must beat CPU-only ({t_cpu}) when clusters are cached"
        );
    }

    #[test]
    fn dispatcher_lets_early_queries_finish_before_batch_end() {
        // Zero coverage exercises the dispatcher's CPU loop in isolation:
        // every query completes at its own prefix offset, with no shared
        // GPU completion flag to ride on. (With substantial coverage all
        // queries may legitimately finish together at the GPU flag, which
        // is covered by `no_dispatcher_bunches_completions_at_batch_end`.)
        let system = RagSystem::build(RagConfig::tiny(SystemKind::VectorLite));
        let split = IndexSplit::build(&system.profile, 0.0, 3);
        let mut engine = HybridSearchEngine::new(
            SystemKind::VectorLite,
            system.cost.clone(),
            system.workload.clone(),
            &system.profile,
            Router::new(split),
            true,
            vec![0, 1, 2],
            4,
            7,
        );
        let plan = run_one_batch(&mut engine, 12);
        let last = plan.queries.iter().map(|q| q.done_offset).max().unwrap();
        let first = plan.queries.iter().map(|q| q.done_offset).min().unwrap();
        assert!(first < last, "dispatcher should spread completions");
    }

    #[test]
    fn no_dispatcher_bunches_completions_at_batch_end() {
        let mut engine = engine_for(SystemKind::VectorLite, false);
        let plan = run_one_batch(&mut engine, 12);
        let offsets: Vec<_> = plan.queries.iter().map(|q| q.done_offset).collect();
        assert!(offsets.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn dispatcher_improves_mean_completion() {
        let mut on = engine_for(SystemKind::VectorLite, true);
        let mut off = engine_for(SystemKind::VectorLite, false);
        let mean = |plan: &BatchPlan| {
            plan.queries
                .iter()
                .map(|q| q.done_offset.as_secs_f64())
                .sum::<f64>()
                / plan.batch as f64
        };
        let m_on = mean(&run_one_batch(&mut on, 16));
        let m_off = mean(&run_one_batch(&mut off, 16));
        assert!(m_on < m_off, "dispatcher mean {m_on} should beat {m_off}");
    }

    #[test]
    fn all_gpu_occupies_every_retrieval_gpu() {
        let mut engine = engine_for(SystemKind::AllGpu, false);
        let plan = run_one_batch(&mut engine, 4);
        let gpus: std::collections::HashSet<usize> =
            plan.gpu_busy.iter().map(|&(g, _)| g).collect();
        assert_eq!(gpus.len(), 4, "ALL-GPU must keep all shards busy: {gpus:?}");
    }

    #[test]
    fn cpu_only_never_touches_gpus() {
        let mut engine = engine_for(SystemKind::CpuOnly, false);
        let plan = run_one_batch(&mut engine, 6);
        assert!(plan.gpu_busy.is_empty());
        assert_eq!(engine.gpu_duty(0, plan.busy_until), 0.0);
    }

    #[test]
    fn min_hit_rate_is_batch_minimum() {
        let mut engine = engine_for(SystemKind::VectorLite, true);
        let plan = run_one_batch(&mut engine, 10);
        let min = plan.queries.iter().map(|q| q.hit_rate).fold(1.0, f64::min);
        assert_eq!(plan.min_hit_rate, min);
    }

    #[test]
    fn hedra_pays_unpruned_launch_cost() {
        // Same coverage and shard layout: the pruned (vLiteRAG) plan's GPU
        // seconds must undercut Hedra-style full-probe launches.
        let mut config = RagConfig::tiny(SystemKind::VectorLite);
        config.dispatcher = false;
        let system = RagSystem::build(config);
        let split = IndexSplit::build(&system.profile, 0.3, 3);
        let mk = |kind: SystemKind| {
            HybridSearchEngine::new(
                kind,
                system.cost.clone(),
                system.workload.clone(),
                &system.profile,
                Router::new(split.clone()),
                false,
                vec![0, 1, 2],
                4,
                9,
            )
        };
        let gpu_secs = |plan: &BatchPlan| plan.gpu_busy.iter().map(|&(_, s)| s).sum::<f64>();
        let mut vlite = mk(SystemKind::VectorLite);
        let mut hedra = mk(SystemKind::HedraRag);
        let sv = gpu_secs(&run_one_batch(&mut vlite, 8));
        let sh = gpu_secs(&run_one_batch(&mut hedra, 8));
        assert!(sv < sh, "pruned {sv} should be cheaper than unpruned {sh}");
    }
}
