//! End-to-end RAG serving pipeline in virtual time.
//!
//! Drives Poisson arrivals through the hybrid search engine and the
//! continuous-batching LLM instances, recording per-request TTFT (with its
//! queueing/search/prefill breakdown, Fig. 12), end-to-end latency and SLO
//! attainment — the measurement spine of Figs. 10–17.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vlite_llm::{LlmEngine, LlmEvent, LlmRequest};
use vlite_metrics::LatencyRecorder;
use vlite_sim::{EventQueue, PoissonProcess, SimDuration, SimTime};

use crate::{HybridSearchEngine, RagSystem, SearchRequest, SearchStats, SystemKind};

/// Parameters of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Poisson arrival rate, requests/s.
    pub arrival_rate: f64,
    /// Number of requests to serve.
    pub n_requests: usize,
    /// RNG seed (arrivals and probe draws).
    pub seed: u64,
    /// Document fetch latency between retrieval and generation (seconds).
    pub doc_fetch: f64,
}

impl PipelineConfig {
    /// Creates a run config with the paper's defaults (2 ms doc fetch).
    pub fn new(arrival_rate: f64, n_requests: usize, seed: u64) -> Self {
        Self {
            arrival_rate,
            n_requests,
            seed,
            doc_fetch: 0.002,
        }
    }
}

/// Per-request timeline.
#[derive(Debug, Clone, Copy, Default)]
struct RequestRecord {
    arrival: SimTime,
    batch_start: Option<SimTime>,
    search_done: Option<SimTime>,
    llm_submit: Option<SimTime>,
    first_token: Option<SimTime>,
    completed: Option<SimTime>,
    hit_rate: f64,
}

/// Aggregated outcome of a pipeline run.
#[derive(Debug)]
pub struct RunResult {
    /// Time to first token per request (arrival → first token).
    pub ttft: LatencyRecorder,
    /// End-to-end latency per request (arrival → last token).
    pub e2e: LatencyRecorder,
    /// Retrieval latency including queueing (arrival → search done).
    pub search_total: LatencyRecorder,
    /// Retrieval queueing delay (arrival → batch start).
    pub search_queue: LatencyRecorder,
    /// Retrieval execution (batch start → search done).
    pub search_exec: LatencyRecorder,
    /// Generation-side queueing (search done → first token, minus the
    /// prefill estimate).
    pub llm_queue: LatencyRecorder,
    /// Single-request prefill time estimate (seconds) used in breakdowns.
    pub prefill_estimate: f64,
    /// Per-request cache hit rates.
    pub hit_rates: Vec<f64>,
    /// Search-engine statistics (batch sizes, min hit rates).
    pub search_stats: SearchStats,
    /// Requests completed.
    pub completed: usize,
    /// Total LLM preemptions across instances.
    pub preemptions: u64,
}

impl RunResult {
    /// TTFT SLO attainment against a latency target in seconds.
    pub fn slo_attainment(&self, target: f64) -> f64 {
        self.ttft.fraction_within(target)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(u64),
    QueryDone(u64),
    BatchDone,
    LlmSubmit(u64),
    LlmStep(usize),
}

/// The pipeline simulator.
///
/// # Examples
///
/// ```
/// use vlite_core::{PipelineConfig, RagConfig, RagPipeline, RagSystem, SystemKind};
///
/// let system = RagSystem::build(RagConfig::tiny(SystemKind::VectorLite));
/// let result = RagPipeline::new(&system).run(&PipelineConfig::new(10.0, 50, 1));
/// assert_eq!(result.completed, 50);
/// ```
#[derive(Debug)]
pub struct RagPipeline<'a> {
    system: &'a RagSystem,
}

impl<'a> RagPipeline<'a> {
    /// Creates a pipeline over a built system.
    pub fn new(system: &'a RagSystem) -> Self {
        Self { system }
    }

    /// Runs the simulation to completion and aggregates results.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_requests == 0`.
    pub fn run(&self, config: &PipelineConfig) -> RunResult {
        assert!(config.n_requests > 0, "need at least one request");
        let system = self.system;
        let tp = system.config.tp as usize;
        let co_located = matches!(
            system.config.system,
            SystemKind::VectorLite | SystemKind::AllGpu | SystemKind::HedraRag
        );

        // Search engine.
        let mut search = HybridSearchEngine::new(
            system.config.system,
            system.cost.clone(),
            system.workload.clone(),
            &system.profile,
            system.router.clone(),
            system.config.dispatcher,
            system.shard_gpus.clone(),
            system.config.node.n_gpus,
            config.seed,
        );

        // LLM instances.
        let mut llms: Vec<LlmEngine> = (0..system.n_llm_instances)
            .map(|_| LlmEngine::new(system.llm_cost.clone(), system.kv_bytes_per_instance))
            .collect();
        let mut llm_busy = vec![false; llms.len()];
        let mut llm_pending: Vec<Vec<LlmEvent>> = vec![Vec::new(); llms.len()];

        // Requests and arrivals.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut arrivals = PoissonProcess::new(config.arrival_rate);
        let mut records: Vec<RequestRecord> = Vec::with_capacity(config.n_requests);
        let mut events: EventQueue<Event> = EventQueue::new();
        for id in 0..config.n_requests as u64 {
            let at = arrivals.next_arrival(&mut rng);
            records.push(RequestRecord {
                arrival: at,
                ..Default::default()
            });
            events.schedule(at, Event::Arrival(id));
        }
        let mut batch_of: HashMap<u64, (SimTime, f64)> = HashMap::new();
        let mut completed = 0usize;

        while let Some((now, event)) = events.pop() {
            match event {
                Event::Arrival(id) => {
                    search.enqueue(SearchRequest { id, arrival: now });
                    if let Some(plan) = search.try_start_batch(now) {
                        schedule_batch(&mut events, &mut batch_of, &plan);
                    }
                }
                Event::BatchDone => {
                    search.finish_batch(now);
                    if let Some(plan) = search.try_start_batch(now) {
                        schedule_batch(&mut events, &mut batch_of, &plan);
                    }
                }
                Event::QueryDone(id) => {
                    let (batch_start, hit) = batch_of.remove(&id).expect("query was planned");
                    let rec = &mut records[id as usize];
                    rec.batch_start = Some(batch_start);
                    rec.search_done = Some(now);
                    rec.hit_rate = hit;
                    events.schedule(
                        now + SimDuration::from_secs_f64(config.doc_fetch),
                        Event::LlmSubmit(id),
                    );
                }
                Event::LlmSubmit(id) => {
                    records[id as usize].llm_submit = Some(now);
                    // Least-loaded instance by outstanding work.
                    let instance = (0..llms.len())
                        .min_by_key(|&i| llms[i].queue_len() + llms[i].running_len())
                        .expect("at least one instance");
                    llms[instance].submit(
                        LlmRequest::new(
                            id,
                            system.config.input_tokens,
                            system.config.output_tokens,
                        ),
                        now,
                    );
                    if !llm_busy[instance] {
                        advance_llm(
                            system,
                            &search,
                            &mut llms,
                            &mut llm_busy,
                            &mut llm_pending,
                            instance,
                            now,
                            &mut events,
                            tp,
                            co_located,
                        );
                    }
                }
                Event::LlmStep(instance) => {
                    llm_busy[instance] = false;
                    for ev in std::mem::take(&mut llm_pending[instance]) {
                        match ev {
                            LlmEvent::FirstToken { id, at } => {
                                records[id as usize].first_token = Some(at);
                            }
                            LlmEvent::Completed { id, at } => {
                                records[id as usize].completed = Some(at);
                                completed += 1;
                            }
                        }
                    }
                    advance_llm(
                        system,
                        &search,
                        &mut llms,
                        &mut llm_busy,
                        &mut llm_pending,
                        instance,
                        now,
                        &mut events,
                        tp,
                        co_located,
                    );
                }
            }
        }

        self.aggregate(config, records, completed, search, llms)
    }

    fn aggregate(
        &self,
        _config: &PipelineConfig,
        records: Vec<RequestRecord>,
        completed: usize,
        search: HybridSearchEngine,
        llms: Vec<LlmEngine>,
    ) -> RunResult {
        let prefill_estimate = self
            .system
            .llm_cost
            .prefill_time(self.system.config.input_tokens, 1.0)
            .as_secs_f64();
        let mut ttft = LatencyRecorder::new();
        let mut e2e = LatencyRecorder::new();
        let mut search_total = LatencyRecorder::new();
        let mut search_queue = LatencyRecorder::new();
        let mut search_exec = LatencyRecorder::new();
        let mut llm_queue = LatencyRecorder::new();
        let mut hit_rates = Vec::with_capacity(records.len());
        for rec in &records {
            let (Some(batch_start), Some(search_done), Some(first), Some(done)) = (
                rec.batch_start,
                rec.search_done,
                rec.first_token,
                rec.completed,
            ) else {
                continue;
            };
            ttft.record((first - rec.arrival).as_secs_f64());
            e2e.record((done - rec.arrival).as_secs_f64());
            search_total.record((search_done - rec.arrival).as_secs_f64());
            search_queue.record((batch_start - rec.arrival).as_secs_f64());
            search_exec.record((search_done - batch_start).as_secs_f64());
            let wait = ((first - rec.llm_submit.expect("submitted")).as_secs_f64()
                - prefill_estimate)
                .max(0.0);
            llm_queue.record(wait);
            hit_rates.push(rec.hit_rate);
        }
        RunResult {
            ttft,
            e2e,
            search_total,
            search_queue,
            search_exec,
            llm_queue,
            prefill_estimate,
            hit_rates,
            search_stats: search.stats().clone(),
            completed,
            preemptions: llms.iter().map(|l| l.stats().preemptions).sum(),
        }
    }
}

fn schedule_batch(
    events: &mut EventQueue<Event>,
    batch_of: &mut HashMap<u64, (SimTime, f64)>,
    plan: &crate::BatchPlan,
) {
    for q in &plan.queries {
        batch_of.insert(q.id, (plan.started_at, q.hit_rate));
        events.schedule(plan.started_at + q.done_offset, Event::QueryDone(q.id));
    }
    events.schedule(plan.busy_until, Event::BatchDone);
}

#[allow(clippy::too_many_arguments)]
fn advance_llm(
    system: &RagSystem,
    search: &HybridSearchEngine,
    llms: &mut [LlmEngine],
    llm_busy: &mut [bool],
    llm_pending: &mut [Vec<LlmEvent>],
    instance: usize,
    now: SimTime,
    events: &mut EventQueue<Event>,
    tp: usize,
    co_located: bool,
) {
    // Retrieval interference: mean duty cycle over this instance's GPUs,
    // scaled by how aggressively this system's kernels contend.
    let factor = if co_located {
        let gpus = instance * tp..(instance + 1) * tp;
        let duty: f64 = gpus.clone().map(|g| search.gpu_duty(g, now)).sum::<f64>() / tp as f64;
        vlite_llm::LlmCostModel::interference(duty * search.contention_coeff())
    } else {
        1.0
    };
    llms[instance].set_interference(factor);
    if let Some(step) = llms[instance].advance(now) {
        llm_pending[instance] = step.events;
        llm_busy[instance] = true;
        events.schedule(step.busy_until, Event::LlmStep(instance));
    } else {
        debug_assert!(system.n_llm_instances > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RagConfig;

    fn run(kind: SystemKind, rate: f64, n: usize) -> RunResult {
        let system = RagSystem::build(RagConfig::tiny(kind));
        RagPipeline::new(&system).run(&PipelineConfig::new(rate, n, 3))
    }

    #[test]
    fn all_requests_complete() {
        for kind in SystemKind::main_four() {
            let result = run(kind, 8.0, 60);
            assert_eq!(result.completed, 60, "{kind:?} lost requests");
            assert_eq!(result.ttft.len(), 60);
            assert_eq!(result.e2e.len(), 60);
        }
    }

    #[test]
    fn ttft_below_e2e_everywhere() {
        let mut result = run(SystemKind::VectorLite, 10.0, 80);
        assert!(result.ttft.percentile(1.0) <= result.e2e.percentile(0.0) + 60.0);
        for (t, e) in result.ttft.samples().iter().zip(result.e2e.samples()) {
            assert!(t <= e, "TTFT {t} exceeds E2E {e}");
        }
    }

    #[test]
    fn breakdown_components_sum_to_at_most_ttft() {
        let result = run(SystemKind::VectorLite, 10.0, 60);
        // queue + exec = search_total; search_total + prefill ≤ ttft + ε.
        let st = result.search_total.mean();
        let parts = result.search_queue.mean() + result.search_exec.mean();
        assert!(
            (st - parts).abs() < 1e-6,
            "queue+exec {parts} != total {st}"
        );
        assert!(st + result.prefill_estimate <= result.ttft.mean() + 1e-3);
    }

    #[test]
    fn overload_degrades_latency() {
        let light = run(SystemKind::CpuOnly, 2.0, 60);
        let heavy = run(SystemKind::CpuOnly, 60.0, 60);
        let (mut l, mut h) = (light, heavy);
        assert!(
            h.ttft.percentile(0.9) > l.ttft.percentile(0.9),
            "overload should inflate TTFT: {} vs {}",
            h.ttft.percentile(0.9),
            l.ttft.percentile(0.9)
        );
    }

    #[test]
    fn batch_size_grows_with_arrival_rate() {
        // CPU-only has the slowest search service time, so on-demand
        // batching must accumulate requests once arrivals outpace it.
        let slow = run(SystemKind::CpuOnly, 2.0, 80);
        let fast = run(SystemKind::CpuOnly, 400.0, 80);
        assert!(
            fast.search_stats.mean_batch() > slow.search_stats.mean_batch(),
            "fast {} <= slow {}",
            fast.search_stats.mean_batch(),
            slow.search_stats.mean_batch()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let system = RagSystem::build(RagConfig::tiny(SystemKind::VectorLite));
        let a = RagPipeline::new(&system).run(&PipelineConfig::new(10.0, 40, 5));
        let b = RagPipeline::new(&system).run(&PipelineConfig::new(10.0, 40, 5));
        assert_eq!(a.ttft.samples(), b.ttft.samples());
    }

    #[test]
    fn hit_rates_recorded_for_vectorlite() {
        let result = run(SystemKind::VectorLite, 10.0, 50);
        assert_eq!(result.hit_rates.len(), 50);
        // Tiny preset caches aggressively: some queries must hit.
        assert!(result.hit_rates.iter().any(|&h| h > 0.0));
    }
}
