//! Analytic search-latency cost model for the modeled (paper-scale) tier.
//!
//! The real 18–80 GB indexes cannot be built in this environment, so the
//! serving simulations price search work with curves calibrated to the
//! paper's measurements and scaled by physical ratios:
//!
//! - **Anchor** (paper Fig. 8 left, ORCAS on the 64-core Xeon 8462Y):
//!   coarse quantization `T_CQ(b) ≈ 8 ms + 1.4 ms·b` and LUT stage
//!   `T_LUT(b) ≈ 85 ms + 5.8 ms·b`.
//! - **Scaling laws**: CQ cost ∝ `dim · nlist / cores`; LUT construction
//!   ∝ `dim / cores`; scan cost ∝ bytes scanned / cores; GPU scan rate ∝
//!   device memory bandwidth (≈10× the CPU on H100, paper Fig. 4 left) plus
//!   a per-(query, cluster) kernel-launch toll — the "thread blocks are
//!   launched even for skipped probes" overhead that motivates the router's
//!   probe pruning (§IV-B1).
//!
//! Absolute values need only be plausible; every experiment consumes
//! *ratios* (CPU vs GPU, hot vs cold, SLO vs attained).

use vlite_sim::{CpuSpec, GpuSpec};
use vlite_workload::{ClusterWorkload, DatasetPreset};

/// Calibrated search-cost parameters for one (dataset, CPU, GPU) triple.
///
/// # Examples
///
/// ```
/// use vlite_core::SearchCostModel;
/// use vlite_sim::devices;
/// use vlite_workload::DatasetPreset;
///
/// let preset = DatasetPreset::orcas_1k();
/// let wl = preset.workload(1);
/// let m = SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
/// // CPU-only search latency grows with batch size.
/// assert!(m.cpu_only_total(16.0) > m.cpu_only_total(1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SearchCostModel {
    /// Fixed coarse-quantization cost per batch (seconds).
    pub cq_base: f64,
    /// Incremental coarse-quantization cost per query (seconds).
    pub cq_per_query: f64,
    /// Fixed LUT-stage cost per batch: thread orchestration plus table
    /// construction (seconds).
    pub lut_base: f64,
    /// CPU scan cost per vector visited (seconds).
    pub cpu_sec_per_vector: f64,
    /// GPU scan cost per vector visited (seconds).
    pub gpu_sec_per_vector: f64,
    /// GPU kernel-launch cost per (query, cluster) pair, paid even for
    /// non-resident probes when pruning is disabled (seconds).
    pub gpu_launch_per_cluster: f64,
    /// Fixed GPU dispatch cost per batch (seconds).
    pub gpu_base: f64,
    /// Average vectors visited per query on a full probe
    /// (`nprobe · mean cluster size`).
    pub vectors_per_query: f64,
    /// Probes per query.
    pub nprobe: usize,
}

/// Calibration anchor: ORCAS-1K-like dataset on the 64-core Xeon 8462Y.
mod anchor {
    pub const DIM: f64 = 1024.0;
    pub const NLIST: f64 = 65_536.0;
    pub const CORES: f64 = 64.0;
    /// ORCAS-1K code footprint: 40 GiB / 128 M vectors.
    pub const BYTES_PER_VEC: f64 = 40.0 * 1_073_741_824.0 / 128_000_000.0;
    pub const CQ_BASE: f64 = 0.008;
    pub const CQ_SLOPE: f64 = 0.0014;
    pub const LUT_BASE: f64 = 0.085;
    pub const LUT_SLOPE: f64 = 0.0058;
    /// Reference vectors visited per query at the anchor
    /// (nprobe 2048 × mean cluster size 128M/65536).
    pub const VECTORS_PER_QUERY: f64 = 2048.0 * 128_000_000.0 / 65_536.0;
}

impl SearchCostModel {
    /// Builds the cost model for a dataset preset on given devices.
    pub fn from_preset(
        preset: &DatasetPreset,
        workload: &ClusterWorkload,
        cpu: &CpuSpec,
        gpu: &GpuSpec,
    ) -> SearchCostModel {
        let core_scale = anchor::CORES / f64::from(cpu.cores);
        let dim_scale = preset.dim as f64 / anchor::DIM;
        let nlist_scale = preset.nlist as f64 / anchor::NLIST;
        let bytes_scale = preset.bytes_per_vector() / anchor::BYTES_PER_VEC;

        // Expected vectors visited per query, *access-weighted*: probed
        // clusters are popularity-biased and popular clusters are larger
        // (§III-B), so the expectation is nprobe × Σ_c share_c · size_c —
        // noticeably above nprobe × mean size under heavy skew.
        let sizes = preset.cluster_sizes(workload);
        let vectors_per_query = workload.nprobe() as f64
            * workload
                .access_shares()
                .iter()
                .zip(&sizes)
                .map(|(&share, &size)| share * size as f64)
                .sum::<f64>();
        // The calibrated quantity is the per-query LUT slope (Fig. 8);
        // distribute it over the expected visited vectors to get the
        // per-vector rate, scaled for code width and core count.
        let count_scale = (workload.nprobe() as f64
            * (preset.n_vectors as f64 / preset.nlist as f64))
            / anchor::VECTORS_PER_QUERY;
        let per_query_slope = anchor::LUT_SLOPE * bytes_scale * core_scale * count_scale;
        let cpu_sec_per_vector = per_query_slope / vectors_per_query;
        // GPU scan rate: CPU rate scaled by the bandwidth ratio with a SIMT
        // efficiency bonus, ≈10× on H100 (Fig. 4 left).
        let gpu_sec_per_vector = cpu_sec_per_vector * (cpu.mem_bw / gpu.mem_bw) / 1.8;

        SearchCostModel {
            cq_base: anchor::CQ_BASE * dim_scale * nlist_scale * core_scale,
            cq_per_query: anchor::CQ_SLOPE * dim_scale * nlist_scale * core_scale,
            lut_base: anchor::LUT_BASE * dim_scale * core_scale,
            cpu_sec_per_vector,
            gpu_sec_per_vector,
            gpu_launch_per_cluster: 0.5e-6,
            gpu_base: 0.003,
            vectors_per_query,
            nprobe: workload.nprobe(),
        }
    }

    /// Coarse-quantization latency for a batch (always on CPU, §IV-A1).
    pub fn t_cq(&self, batch: f64) -> f64 {
        self.cq_base + self.cq_per_query * batch
    }

    /// Full CPU LUT-stage latency for a batch (no caching).
    pub fn t_lut_full(&self, batch: f64) -> f64 {
        self.lut_base + self.cpu_per_query_full() * batch
    }

    /// CPU LUT seconds for one query scanning all its probes.
    pub fn cpu_per_query_full(&self) -> f64 {
        self.vectors_per_query * self.cpu_sec_per_vector
    }

    /// CPU-only end-to-end search latency for a batch.
    pub fn cpu_only_total(&self, batch: f64) -> f64 {
        self.t_cq(batch) + self.t_lut_full(batch)
    }

    /// CPU scan seconds for an explicit number of visited vectors.
    pub fn cpu_scan_secs(&self, vectors: f64) -> f64 {
        vectors * self.cpu_sec_per_vector
    }

    /// GPU shard time for one query: kernel launches for every *assigned*
    /// probe (pruned or not — that is the router's lever) plus the scan of
    /// resident vectors.
    pub fn gpu_query_secs(&self, launched_clusters: f64, vectors: f64) -> f64 {
        launched_clusters * self.gpu_launch_per_cluster + vectors * self.gpu_sec_per_vector
    }

    /// Dedicated-GPU full search for a batch: coarse quantization and scan
    /// both on one GPU (the paper's DED-GPU baseline).
    pub fn dedicated_gpu_total(&self, batch: f64) -> f64 {
        // GPU coarse quantization: brute-force centroid scan at GPU rate.
        let cq = self.cq_per_query * 0.1 * batch;
        self.gpu_base + cq + batch * self.gpu_query_secs(self.nprobe as f64, self.vectors_per_query)
    }

    /// The hybrid latency model of paper Eq. 1:
    /// `τ_s(b) = T_CQ(b) + (1 − η) · T_LUT(b)`.
    pub fn hybrid_latency(&self, batch: f64, eta: f64) -> f64 {
        let eta = eta.clamp(0.0, 1.0);
        self.t_cq(batch) + (1.0 - eta) * self.t_lut_full(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_sim::devices;

    fn model(preset: DatasetPreset) -> SearchCostModel {
        let wl = preset.workload(1);
        SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100())
    }

    #[test]
    fn anchor_dataset_reproduces_fig8_curve() {
        let m = model(DatasetPreset::orcas_1k());
        // ORCAS-1K on the 64-core Xeon is (by construction) the anchor.
        assert!((m.t_cq(1.0) - 0.0094).abs() < 1e-4);
        assert!((m.t_lut_full(1.0) - 0.0908).abs() < 1e-3);
        assert!((m.t_lut_full(30.0) - (0.085 + 30.0 * 0.0058)).abs() < 1e-3);
    }

    #[test]
    fn orcas_2k_costs_about_twice_orcas_1k() {
        let m1 = model(DatasetPreset::orcas_1k());
        let m2 = model(DatasetPreset::orcas_2k());
        let r = m2.cpu_only_total(8.0) / m1.cpu_only_total(8.0);
        assert!(r > 1.7 && r < 2.3, "ratio {r}");
    }

    #[test]
    fn gpu_scan_is_roughly_10x_cpu_on_h100() {
        let m = model(DatasetPreset::orcas_1k());
        let speedup = m.cpu_sec_per_vector / m.gpu_sec_per_vector;
        assert!(speedup > 8.0 && speedup < 12.0, "speedup {speedup}");
    }

    #[test]
    fn dedicated_gpu_beats_cpu_by_order_of_magnitude() {
        // Fig. 4 left: GPU IVF search ≪ CPU fast scan.
        let m = model(DatasetPreset::orcas_1k());
        let cpu = m.cpu_only_total(8.0);
        let gpu = m.dedicated_gpu_total(8.0);
        assert!(gpu < cpu / 3.0, "cpu={cpu} gpu={gpu}");
    }

    #[test]
    fn hybrid_latency_endpoints() {
        let m = model(DatasetPreset::wiki_all());
        let b = 8.0;
        assert!((m.hybrid_latency(b, 0.0) - m.cpu_only_total(b)).abs() < 1e-12);
        assert!((m.hybrid_latency(b, 1.0) - m.t_cq(b)).abs() < 1e-12);
        // Monotone improvement with hit rate.
        assert!(m.hybrid_latency(b, 0.8) < m.hybrid_latency(b, 0.4));
    }

    #[test]
    fn fewer_cores_cost_more() {
        let preset = DatasetPreset::orcas_2k();
        let wl = preset.workload(1);
        let full =
            SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
        let half = SearchCostModel::from_preset(
            &preset,
            &wl,
            &devices::xeon_8462y().with_cores(32),
            &devices::h100(),
        );
        assert!((half.cpu_only_total(8.0) / full.cpu_only_total(8.0) - 2.0).abs() < 0.01);
    }

    #[test]
    fn unpruned_launches_dominate_small_scans() {
        // The router's motivation: launching 2048 probes costs more than
        // scanning a small resident slice.
        let m = model(DatasetPreset::orcas_1k());
        let unpruned = m.gpu_query_secs(2048.0, m.vectors_per_query / 8.0);
        let pruned = m.gpu_query_secs(256.0, m.vectors_per_query / 8.0);
        assert!(unpruned > pruned * 1.5);
    }
}
