//! Real-tier synthetic corpora: Gaussian mixtures with Zipf weights.
//!
//! When the full ANN code path must actually execute (tests, micro-benches,
//! model-fit validation), this module generates embedding-like vectors:
//! a mixture of Gaussian blobs whose mixture weights follow a Zipf law, so
//! a real IVF index trained on the corpus exhibits the skewed cluster
//! access the paper observes on Wiki-All / ORCAS.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vlite_ann::VecSet;

use crate::ZipfSampler;

/// Configuration for [`SyntheticCorpus::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Number of database vectors.
    pub n_vectors: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Number of mixture components (semantic topics).
    pub n_centers: usize,
    /// Zipf exponent of the topic popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Standard deviation of the within-topic Gaussian noise.
    pub noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// A small corpus good for unit tests (≈20k vectors, 32 dims).
    pub fn small() -> Self {
        Self {
            n_vectors: 20_000,
            dim: 32,
            n_centers: 64,
            zipf_exponent: 1.0,
            noise: 0.35,
            seed: 0xc0,
        }
    }

    /// A medium corpus for integration tests and micro-benchmarks
    /// (≈200k vectors, 64 dims).
    pub fn medium() -> Self {
        Self {
            n_vectors: 200_000,
            dim: 64,
            n_centers: 256,
            zipf_exponent: 1.0,
            noise: 0.35,
            seed: 0xc1,
        }
    }
}

/// A generated corpus plus its topic structure.
///
/// # Examples
///
/// ```
/// use vlite_workload::{CorpusConfig, SyntheticCorpus};
///
/// let corpus = SyntheticCorpus::generate(&CorpusConfig {
///     n_vectors: 500,
///     dim: 8,
///     n_centers: 10,
///     zipf_exponent: 1.0,
///     noise: 0.2,
///     seed: 42,
/// });
/// assert_eq!(corpus.vectors.len(), 500);
/// let queries = corpus.queries(20, 1);
/// assert_eq!(queries.len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    /// The database vectors.
    pub vectors: VecSet,
    /// The mixture centers ("topics").
    pub centers: VecSet,
    /// Which topic generated each vector.
    pub topic_of: Vec<u32>,
    config: CorpusConfig,
}

impl SyntheticCorpus {
    /// Generates a corpus deterministically from the config.
    ///
    /// # Panics
    ///
    /// Panics if any size field is zero.
    pub fn generate(config: &CorpusConfig) -> SyntheticCorpus {
        assert!(config.n_vectors > 0 && config.dim > 0 && config.n_centers > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Topic centers spread uniformly in [0, 10)^dim, far apart relative
        // to the within-topic noise so the mixture structure is real.
        let centers = VecSet::from_fn(config.n_centers, config.dim, |_, _| {
            rng.random::<f32>() * 10.0
        });
        let zipf = ZipfSampler::new(config.n_centers, config.zipf_exponent);
        let mut vectors = VecSet::with_capacity(config.dim, config.n_vectors);
        let mut topic_of = Vec::with_capacity(config.n_vectors);
        let mut sample = vec![0.0f32; config.dim];
        for _ in 0..config.n_vectors {
            let topic = zipf.sample(&mut rng);
            topic_of.push(topic as u32);
            let center = centers.get(topic);
            for (j, s) in sample.iter_mut().enumerate() {
                *s = center[j] + gaussian(&mut rng) * config.noise;
            }
            vectors.push(&sample);
        }
        SyntheticCorpus {
            vectors,
            centers,
            topic_of,
            config: config.clone(),
        }
    }

    /// Draws `n` queries from the same mixture (same popularity law), with
    /// slightly wider noise — mimicking user queries that are semantically
    /// near, but not identical to, indexed documents.
    pub fn queries(&self, n: usize, seed: u64) -> VecSet {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let zipf = ZipfSampler::new(self.centers.len(), self.config.zipf_exponent);
        let dim = self.vectors.dim();
        let mut out = VecSet::with_capacity(dim, n);
        let mut sample = vec![0.0f32; dim];
        for _ in 0..n {
            let topic = zipf.sample(&mut rng);
            let center = self.centers.get(topic);
            for (j, s) in sample.iter_mut().enumerate() {
                *s = center[j] + gaussian(&mut rng) * self.config.noise * 1.25;
            }
            out.push(&sample);
        }
        out
    }

    /// The generation config.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }
}

/// Standard normal sample via Box–Muller (keeps the dependency set to
/// `rand` itself; `rand_distr` is not in the approved crate list).
/// Public so consumers drawing corpus-law queries (e.g. the serving
/// runtime's load generator) share one sampling law with the corpus.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorpusConfig {
        CorpusConfig {
            n_vectors: 2000,
            dim: 8,
            n_centers: 16,
            zipf_exponent: 1.0,
            noise: 0.2,
            seed: 1,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCorpus::generate(&tiny());
        let b = SyntheticCorpus::generate(&tiny());
        assert_eq!(a.vectors.as_flat(), b.vectors.as_flat());
        assert_eq!(a.topic_of, b.topic_of);
    }

    #[test]
    fn topic_popularity_is_skewed() {
        let corpus = SyntheticCorpus::generate(&tiny());
        let mut counts = [0usize; 16];
        for &t in &corpus.topic_of {
            counts[t as usize] += 1;
        }
        // Zipf(1.0): topic 0 should appear far more often than topic 15.
        assert!(counts[0] > 3 * counts[15].max(1));
    }

    #[test]
    fn vectors_cluster_around_their_topic_center() {
        let corpus = SyntheticCorpus::generate(&tiny());
        for i in (0..2000).step_by(211) {
            let topic = corpus.topic_of[i] as usize;
            let d_own = vlite_ann::l2_sq(corpus.vectors.get(i), corpus.centers.get(topic));
            // Expected squared distance ≈ dim · noise² = 8 · 0.04 = 0.32.
            assert!(d_own < 2.0, "vector {i} strayed too far: {d_own}");
        }
    }

    #[test]
    fn queries_have_matching_dim_and_determinism() {
        let corpus = SyntheticCorpus::generate(&tiny());
        let q1 = corpus.queries(50, 9);
        let q2 = corpus.queries(50, 9);
        assert_eq!(q1.as_flat(), q2.as_flat());
        assert_eq!(q1.dim(), 8);
    }

    #[test]
    fn gaussian_moments_are_standard() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = samples.iter().map(|&x| f64::from(x)).sum::<f64>() / n as f64;
        let var: f64 = samples
            .iter()
            .map(|&x| (f64::from(x) - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }
}
