//! Zipf-distributed sampling.

use rand::Rng;

/// Samples from a Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank = r) ∝ 1 / (r + 1)^s`.
///
/// Uses a precomputed CDF and binary search — O(n) build, O(log n) per
/// sample — which is exact (no rejection) and deterministic given the RNG.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use vlite_workload::ZipfSampler;
///
/// let zipf = ZipfSampler::new(100, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut counts = [0usize; 100];
/// for _ in 0..10_000 {
///     counts[zipf.sample(&mut rng)] += 1;
/// }
/// assert!(counts[0] > counts[50]); // rank 0 is the most popular
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be >= 0, got {s}"
        );
        let weights = Self::weights(n, s);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cdf.push(acc);
        }
        // Guard against FP drift so the final bucket is always reachable.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// The normalized probability masses `P(rank = r)`, descending in rank.
    pub fn weights(n: usize, s: f64) -> Vec<f64> {
        let raw: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / total).collect()
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true for a constructed sampler).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.sample_from_uniform(u)
    }

    /// Maps a uniform `[0,1)` draw to a rank (exposed for testability).
    pub fn sample_from_uniform(&self, u: f64) -> usize {
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_are_normalized_and_descending() {
        let w = ZipfSampler::weights(50, 1.2);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let w = ZipfSampler::weights(10, 0.0);
        for x in &w {
            assert!((x - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let n = 20;
        let zipf = ZipfSampler::new(n, 1.0);
        let w = ZipfSampler::weights(n, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 200_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for r in 0..n {
            let freq = counts[r] as f64 / trials as f64;
            assert!(
                (freq - w[r]).abs() < 0.01,
                "rank {r}: freq {freq} vs weight {}",
                w[r]
            );
        }
    }

    #[test]
    fn uniform_edges_map_into_range() {
        let zipf = ZipfSampler::new(5, 1.0);
        assert_eq!(zipf.sample_from_uniform(0.0), 0);
        assert!(zipf.sample_from_uniform(0.999_999_999) < 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_rejected() {
        ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_rejected() {
        ZipfSampler::new(5, -1.0);
    }
}
