//! Dataset presets mirroring the paper's evaluation corpora (§V-A, Table I).

use crate::ClusterWorkload;

/// Paper-scale parameters of one vector database, used by the modeled tier.
///
/// The three presets carry the footprints, dimensionalities, skew
/// calibration points and search SLOs the paper reports; [`workload`] builds
/// the calibrated access workload, and [`cluster_sizes`]/[`cluster_bytes`]
/// synthesize the per-cluster layout the splitter packs into GPU shards.
///
/// [`workload`]: DatasetPreset::workload
/// [`cluster_sizes`]: DatasetPreset::cluster_sizes
/// [`cluster_bytes`]: DatasetPreset::cluster_bytes
///
/// # Examples
///
/// ```
/// let wiki = vlite_workload::DatasetPreset::wiki_all();
/// assert_eq!(wiki.index_bytes, 18 << 30);
/// let sizes = wiki.cluster_sizes(&wiki.workload(1));
/// assert_eq!(sizes.len(), wiki.nlist);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetPreset {
    /// Display name.
    pub name: &'static str,
    /// Number of database vectors.
    pub n_vectors: u64,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Number of IVF clusters.
    pub nlist: usize,
    /// Default probes per query (paper: 2048 → 0.91 NDCG@50).
    pub default_nprobe: usize,
    /// Compressed index footprint in bytes (paper: 18 / 40 / 80 GB).
    pub index_bytes: u64,
    /// Share of accesses on the top-20% clusters (Fig. 5 calibration).
    pub top20_share: f64,
    /// Retrieval-stage SLO in milliseconds (Table I).
    pub slo_search_ms: f64,
    /// Documents retrieved per query (paper: top-25).
    pub top_k: usize,
}

impl DatasetPreset {
    /// Wiki-All: 88M × 768-d vectors, 18 GB IVF-PQ index, moderate skew
    /// (top-20% ⇒ 59% of accesses), 150 ms search SLO.
    pub fn wiki_all() -> Self {
        Self {
            name: "Wiki-All",
            n_vectors: 88_000_000,
            dim: 768,
            nlist: 65_536,
            default_nprobe: 2048,
            index_bytes: 18 << 30,
            top20_share: 0.59,
            slo_search_ms: 150.0,
            top_k: 25,
        }
    }

    /// ORCAS 1K: chunked-Wikipedia corpus embedded at 1024 dims with real
    /// Bing-query skew (top-20% ⇒ 93%), 40 GB index, 200 ms search SLO.
    pub fn orcas_1k() -> Self {
        Self {
            name: "ORCAS 1K",
            n_vectors: 128_000_000,
            dim: 1024,
            nlist: 65_536,
            default_nprobe: 2048,
            index_bytes: 40 << 30,
            top20_share: 0.93,
            slo_search_ms: 200.0,
            top_k: 25,
        }
    }

    /// ORCAS 2K: the 2048-dim variant, 80 GB index, 300 ms search SLO.
    pub fn orcas_2k() -> Self {
        Self {
            name: "ORCAS 2K",
            n_vectors: 128_000_000,
            dim: 2048,
            nlist: 65_536,
            default_nprobe: 2048,
            index_bytes: 80 << 30,
            top20_share: 0.93,
            slo_search_ms: 300.0,
            top_k: 25,
        }
    }

    /// The three paper datasets in evaluation order.
    pub fn all() -> Vec<DatasetPreset> {
        vec![Self::wiki_all(), Self::orcas_1k(), Self::orcas_2k()]
    }

    /// A miniature preset for fast tests: same structure, 512 clusters.
    /// The search SLO is deliberately tight relative to the (small) CPU
    /// search cost so that partitioning decisions are non-trivial.
    pub fn tiny() -> Self {
        Self {
            name: "Tiny",
            n_vectors: 1_000_000,
            dim: 64,
            nlist: 512,
            default_nprobe: 32,
            index_bytes: 256 << 20,
            top20_share: 0.80,
            slo_search_ms: 5.0,
            top_k: 10,
        }
    }

    /// Builds the calibrated cluster access workload for this dataset.
    pub fn workload(&self, seed: u64) -> ClusterWorkload {
        ClusterWorkload::calibrate(self.nlist, self.default_nprobe, self.top20_share, seed)
    }

    /// Synthesizes per-cluster vector counts.
    ///
    /// Counts follow `access_share^0.5` — popular clusters are larger, the
    /// cluster-size imbalance the paper notes "exacerbates the access skew"
    /// (§III-B) — normalized to sum to `n_vectors` with a floor of one
    /// vector per cluster.
    pub fn cluster_sizes(&self, workload: &ClusterWorkload) -> Vec<u64> {
        let shares = workload.access_shares();
        let weights: Vec<f64> = shares.iter().map(|s| s.sqrt()).collect();
        let total_w: f64 = weights.iter().sum();
        let mut sizes: Vec<u64> = weights
            .iter()
            .map(|w| ((w / total_w) * self.n_vectors as f64).round().max(1.0) as u64)
            .collect();
        // Fix rounding drift so totals are exact (adjust the largest entry).
        let drift = sizes.iter().sum::<u64>() as i64 - self.n_vectors as i64;
        if drift != 0 {
            let largest = (0..sizes.len())
                .max_by_key(|&i| sizes[i])
                .expect("nlist > 0");
            sizes[largest] = (sizes[largest] as i64 - drift).max(1) as u64;
        }
        sizes
    }

    /// Per-cluster index footprint in bytes, proportional to cluster sizes
    /// and summing to `index_bytes`.
    pub fn cluster_bytes(&self, workload: &ClusterWorkload) -> Vec<u64> {
        let sizes = self.cluster_sizes(workload);
        let bytes_per_vec = self.index_bytes as f64 / self.n_vectors as f64;
        sizes
            .iter()
            .map(|&s| (s as f64 * bytes_per_vec).round() as u64)
            .collect()
    }

    /// Bytes of compressed index data per vector (codes + ids + overhead).
    pub fn bytes_per_vector(&self) -> f64 {
        self.index_bytes as f64 / self.n_vectors as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_footprints_are_exact() {
        assert_eq!(DatasetPreset::wiki_all().index_bytes, 18 * (1 << 30));
        assert_eq!(DatasetPreset::orcas_1k().index_bytes, 40 * (1u64 << 30));
        assert_eq!(DatasetPreset::orcas_2k().index_bytes, 80 * (1u64 << 30));
    }

    #[test]
    fn tiny_workload_calibrates_to_target() {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(3);
        assert!((wl.top_fraction_share(0.2) - preset.top20_share).abs() < 0.02);
    }

    #[test]
    fn cluster_sizes_sum_to_n_vectors() {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(3);
        let sizes = preset.cluster_sizes(&wl);
        assert_eq!(sizes.iter().sum::<u64>(), preset.n_vectors);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn cluster_bytes_approximate_index_bytes() {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(3);
        let total: u64 = preset.cluster_bytes(&wl).iter().sum();
        let err = (total as f64 - preset.index_bytes as f64).abs() / preset.index_bytes as f64;
        assert!(err < 0.001, "cluster bytes off by {err}");
    }

    #[test]
    fn popular_clusters_are_larger() {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(3);
        let sizes = preset.cluster_sizes(&wl);
        let hot = wl.hot_set(0.1);
        let hot_mean =
            hot.iter().map(|&c| sizes[c as usize] as f64).sum::<f64>() / hot.len() as f64;
        let overall_mean = preset.n_vectors as f64 / preset.nlist as f64;
        assert!(
            hot_mean > overall_mean,
            "hot clusters should exceed mean size"
        );
    }

    #[test]
    fn orcas_is_more_skewed_than_wiki() {
        assert!(DatasetPreset::orcas_1k().top20_share > DatasetPreset::wiki_all().top20_share);
    }
}
