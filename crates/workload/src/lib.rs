//! Synthetic corpora and skewed query workloads.
//!
//! The paper's datasets (Wiki-All 88M×768, ORCAS 1K/2K with real Bing query
//! logs) are unavailable offline, so this crate synthesizes workloads that
//! reproduce the *one property the partitioner consumes*: the cluster access
//! distribution. Fig. 5 of the paper pins two calibration points —
//! the top 20% of clusters receive ≈59% of accesses for Wiki-All and ≈93%
//! for ORCAS — and [`ClusterWorkload::calibrate`] solves for the Zipf
//! exponent that reproduces them exactly.
//!
//! Two tiers (see `DESIGN.md` §2):
//!
//! - **Modeled tier** — [`ClusterWorkload`] generates per-query probe sets
//!   over a "semantic ring" of clusters: a query anchors at a
//!   popularity-weighted cluster and probes a contiguous window, so probe
//!   sets are *correlated within a query* — which is what creates the
//!   inter-query hit-rate variance central to the paper (§III-C).
//! - **Real tier** — [`SyntheticCorpus`] generates Gaussian-mixture vectors
//!   with Zipf mixture weights; queries sampled from the same mixture make a
//!   real IVF index exhibit skewed cluster access.
//!
//! # Examples
//!
//! ```
//! use vlite_workload::ClusterWorkload;
//! use rand::SeedableRng;
//!
//! let wl = ClusterWorkload::calibrate(1024, 64, 0.80, 7);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let probes = wl.gen_probe_set(&mut rng);
//! assert!(!probes.is_empty() && probes.len() <= 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod corpus;
mod datasets;
mod zipf;

pub use access::ClusterWorkload;
pub use corpus::{gaussian, CorpusConfig, SyntheticCorpus};
pub use datasets::DatasetPreset;
pub use zipf::ZipfSampler;
