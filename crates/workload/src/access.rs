//! Cluster-level access workload: the "semantic ring" model.
//!
//! A query against an IVF index probes `nprobe` clusters that are
//! *semantically close to each other* — not an independent sample. This
//! module models that with a ring of clusters whose popularity descends with
//! ring position: a query draws an anchor cluster (popularity-weighted),
//! places a window of `nprobe` consecutive ring positions over it at a
//! uniform offset, and probes exactly that window.
//!
//! Consequences, matching the paper's observations:
//!
//! - cluster access frequency is skewed (Fig. 5) and calibratable;
//! - a query's probes are correlated, so per-query cache hit rates have
//!   high variance across queries (Fig. 6) — anchor in the hot region ⇒
//!   η ≈ 1, anchor at the hot/cold boundary ⇒ η ≈ 0.5, cold ⇒ η ≈ 0;
//! - hit-rate variance peaks at mean ≈ 0.5 (Fig. 8 right), the property the
//!   Beta approximation exploits.

use rand::Rng;

use crate::ZipfSampler;

/// A calibrated cluster access workload over `nlist` clusters.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use vlite_workload::ClusterWorkload;
///
/// // ORCAS-like skew: top 20% of clusters take 93% of accesses.
/// let wl = ClusterWorkload::calibrate(2048, 128, 0.93, 1);
/// let share = wl.top_fraction_share(0.2);
/// assert!((share - 0.93).abs() < 0.02);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let probes = wl.gen_probe_set(&mut rng);
/// assert!(!probes.is_empty() && probes.len() <= 128);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterWorkload {
    nlist: usize,
    nprobe: usize,
    /// Sub-windows per probe set: a query's probes split across this many
    /// popularity-anchored windows (queries touch several semantic
    /// regions). More windows ⇒ lower inter-query hit-rate variance.
    n_windows: usize,
    /// Anchor-draw popularity per ring position (descending, sums to 1).
    popularity: Vec<f64>,
    /// Cumulative popularity for anchor sampling.
    cum: Vec<f64>,
    /// Expected per-cluster access share (triangular smoothing of
    /// popularity by the probe sub-window), sums to 1.
    access: Vec<f64>,
    /// The Zipf exponent used to build `popularity`.
    exponent: f64,
}

/// Default sub-windows per query; calibrated so the peak hit-rate variance
/// σ²_max lands near the paper's profiled magnitude (Fig. 8 right) instead
/// of the fully bimodal single-window extreme.
const DEFAULT_WINDOWS: usize = 4;

impl ClusterWorkload {
    /// Builds a workload with an explicit Zipf exponent.
    ///
    /// # Panics
    ///
    /// Panics if `nprobe` is zero or exceeds `nlist`.
    pub fn new(nlist: usize, nprobe: usize, exponent: f64, _seed: u64) -> Self {
        assert!(nprobe > 0 && nprobe <= nlist, "need 0 < nprobe <= nlist");
        let n_windows = DEFAULT_WINDOWS.min(nprobe);
        let popularity = ZipfSampler::weights(nlist, exponent);
        let mut cum = Vec::with_capacity(nlist);
        let mut acc = 0.0;
        for &p in &popularity {
            acc += p;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        let access = expected_access(&popularity, nprobe.div_ceil(n_windows));
        Self {
            nlist,
            nprobe,
            n_windows,
            popularity,
            cum,
            access,
            exponent,
        }
    }

    /// Finds the Zipf exponent whose *access* distribution gives the top
    /// 20% of clusters a `top20_target` share, then builds that workload.
    ///
    /// The paper's calibration points: Wiki-All ⇒ 0.59, ORCAS ⇒ 0.93
    /// (Fig. 5).
    ///
    /// # Panics
    ///
    /// Panics if `top20_target` is not in `(0.2, 1.0)` — a share of exactly
    /// 0.2 is the uniform baseline and 1.0 is unreachable.
    pub fn calibrate(nlist: usize, nprobe: usize, top20_target: f64, seed: u64) -> Self {
        assert!(
            top20_target > 0.2 && top20_target < 1.0,
            "top-20% share must be in (0.2, 1.0), got {top20_target}"
        );
        let (mut lo, mut hi) = (0.0f64, 8.0f64);
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            let share = Self::new(nlist, nprobe, mid, seed).top_fraction_share(0.2);
            if share < top20_target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self::new(nlist, nprobe, 0.5 * (lo + hi), seed)
    }

    /// Number of clusters.
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// Probes per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// The calibrated Zipf exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Anchor-draw popularity per ring position (sums to 1).
    pub fn popularity(&self) -> &[f64] {
        &self.popularity
    }

    /// Returns a drifted copy of this workload: the popularity ring rotated
    /// by `offset` positions, i.e. the hot region migrates to previously
    /// cold clusters. Models the query-distribution drift the adaptive
    /// runtime update reacts to (paper §IV-B3).
    pub fn rotated(&self, offset: usize) -> ClusterWorkload {
        let n = self.nlist;
        let mut popularity = vec![0.0f64; n];
        for (i, &p) in self.popularity.iter().enumerate() {
            popularity[(i + offset) % n] = p;
        }
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &popularity {
            acc += p;
            cum.push(acc);
        }
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        let access = expected_access(&popularity, self.nprobe.div_ceil(self.n_windows));
        ClusterWorkload {
            nlist: n,
            nprobe: self.nprobe,
            n_windows: self.n_windows,
            popularity,
            cum,
            access,
            exponent: self.exponent,
        }
    }

    /// Expected access share per cluster in ring order (sums to 1).
    pub fn access_shares(&self) -> &[f64] {
        &self.access
    }

    /// Access shares sorted descending — the paper's Fig. 5 x-axis order.
    pub fn access_shares_sorted(&self) -> Vec<f64> {
        let mut shares = self.access.clone();
        shares.sort_by(|a, b| b.partial_cmp(a).expect("shares are finite"));
        shares
    }

    /// Share of accesses landing on the most-accessed `fraction` of
    /// clusters (e.g. `0.2` → the paper's top-20% calibration metric).
    pub fn top_fraction_share(&self, fraction: f64) -> f64 {
        let take = ((self.nlist as f64 * fraction).round() as usize).clamp(1, self.nlist);
        self.access_shares_sorted().iter().take(take).sum()
    }

    /// The hot-cluster set of a given coverage: ids of the top
    /// `coverage · nlist` clusters by expected access share.
    pub fn hot_set(&self, coverage: f64) -> Vec<u32> {
        let take = ((self.nlist as f64 * coverage).round() as usize).min(self.nlist);
        let mut order: Vec<u32> = (0..self.nlist as u32).collect();
        order.sort_by(|&a, &b| {
            self.access[b as usize]
                .partial_cmp(&self.access[a as usize])
                .expect("shares are finite")
                .then(a.cmp(&b))
        });
        order.truncate(take);
        order
    }

    /// Expected (mean) hit rate of the hot set at `coverage` — the cache
    /// coverage → mean-hit-rate mapping the estimator consumes.
    pub fn mean_hit_rate(&self, coverage: f64) -> f64 {
        self.hot_set(coverage)
            .iter()
            .map(|&c| self.access[c as usize])
            .sum()
    }

    /// Draws one query's probe set: the union of
    /// [`n_windows`](Self::new) contiguous sub-windows, each around an
    /// independently popularity-weighted anchor. Windows may overlap, so
    /// the set holds *up to* `nprobe` distinct clusters (overlap is rare
    /// except at the very head of heavy-skew rings — semantically, a query
    /// whose topics coincide simply probes fewer distinct clusters).
    pub fn gen_probe_set<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u32> {
        let sub = self.nprobe.div_ceil(self.n_windows);
        let mut chosen = vec![false; self.nlist];
        let mut out = Vec::with_capacity(self.nprobe);
        let mut budget = self.nprobe;
        for _ in 0..self.n_windows {
            let want = sub.min(budget);
            if want == 0 {
                break;
            }
            budget -= want;
            let anchor = self.sample_anchor(rng);
            let offset = rng.random_range(0..sub);
            let start = (anchor + self.nlist - offset) % self.nlist;
            for i in 0..want {
                let c = (start + i) % self.nlist;
                if !chosen[c] {
                    chosen[c] = true;
                    out.push(c as u32);
                }
            }
        }
        out
    }

    /// Draws an anchor cluster by popularity.
    pub fn sample_anchor<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.nlist - 1),
            Err(i) => i.min(self.nlist - 1),
        }
    }

    /// Empirical per-cluster access counts over `n_queries` sampled queries.
    pub fn sample_access_histogram<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n_queries: usize,
    ) -> Vec<u64> {
        let mut counts = vec![0u64; self.nlist];
        for _ in 0..n_queries {
            for c in self.gen_probe_set(rng) {
                counts[c as usize] += 1;
            }
        }
        counts
    }

    /// Hit rate of one probe set against a hot-set membership mask.
    pub fn hit_rate(probes: &[u32], hot_mask: &[bool]) -> f64 {
        if probes.is_empty() {
            return 0.0;
        }
        let hits = probes.iter().filter(|&&c| hot_mask[c as usize]).count();
        hits as f64 / probes.len() as f64
    }

    /// Builds a membership mask for a hot set.
    pub fn hot_mask(&self, hot_set: &[u32]) -> Vec<bool> {
        let mut mask = vec![false; self.nlist];
        for &c in hot_set {
            mask[c as usize] = true;
        }
        mask
    }
}

/// Expected access share per cluster under the multi-window draw.
///
/// One window covers cluster `j` with probability
/// `t_j = Σ_a p_a · max(0, sub − |a−j|) / sub` (triangular overlap kernel);
/// with `W` independent windows the cluster is probed with probability
/// `1 − (1 − t_j)^W`, normalized into shares. The triangular kernel is the
/// convolution of two box kernels of the same width, so the smoothing runs
/// in O(n) with circular sliding sums — calibration stays cheap even at
/// `nlist = 65536`, `nprobe = 2048` (paper scale).
fn expected_access(popularity: &[f64], sub: usize) -> Vec<f64> {
    expected_access_windows(popularity, sub, DEFAULT_WINDOWS)
}

fn expected_access_windows(popularity: &[f64], sub: usize, windows: usize) -> Vec<f64> {
    let fwd = circular_box_forward(popularity, sub);
    let tri = circular_box_backward(&fwd, sub);
    // tri_j = Σ_a p_a (sub − |d|); per-window coverage prob = tri_j / sub.
    let w = windows as f64;
    let mut access: Vec<f64> = tri
        .iter()
        .map(|&t| {
            let cover = (t / sub as f64).clamp(0.0, 1.0);
            1.0 - (1.0 - cover).powf(w)
        })
        .collect();
    let total: f64 = access.iter().sum();
    for x in &mut access {
        *x /= total;
    }
    access
}

/// Circular sliding-window sum over `{j, j+1, …, j+m-1}`.
fn circular_box_forward(p: &[f64], m: usize) -> Vec<f64> {
    let n = p.len();
    let mut out = vec![0.0f64; n];
    let mut sum: f64 = (0..m).map(|k| p[k % n]).sum();
    for j in 0..n {
        out[j] = sum;
        sum -= p[j];
        sum += p[(j + m) % n];
    }
    out
}

/// Circular sliding-window sum over `{j-m+1, …, j-1, j}`.
fn circular_box_backward(p: &[f64], m: usize) -> Vec<f64> {
    let n = p.len();
    let mut out = vec![0.0f64; n];
    let mut sum: f64 = (0..m).map(|k| p[(n - k % n) % n]).sum();
    for j in 0..n {
        out[j] = sum;
        sum += p[(j + 1) % n];
        sum -= p[(j + 1 + n - (m % n)) % n];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probe_sets_are_distinct_clusters() {
        let wl = ClusterWorkload::new(100, 10, 1.0, 0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let probes = wl.gen_probe_set(&mut rng);
            let mut sorted = probes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), probes.len(), "probes must be distinct");
            assert!(
                probes.len() <= 10 && probes.len() >= 3,
                "union of windows must stay near nprobe, got {}",
                probes.len()
            );
        }
    }

    #[test]
    fn calibration_hits_wiki_all_and_orcas_targets() {
        for target in [0.59, 0.93] {
            let wl = ClusterWorkload::calibrate(1024, 64, target, 3);
            let share = wl.top_fraction_share(0.2);
            assert!(
                (share - target).abs() < 0.01,
                "calibrated share {share} missed target {target}"
            );
        }
    }

    #[test]
    fn higher_exponent_means_more_skew() {
        let mild = ClusterWorkload::new(512, 32, 0.5, 0).top_fraction_share(0.2);
        let steep = ClusterWorkload::new(512, 32, 2.0, 0).top_fraction_share(0.2);
        assert!(steep > mild);
    }

    #[test]
    fn expected_access_matches_sampled_histogram() {
        let wl = ClusterWorkload::new(256, 16, 1.2, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let counts = wl.sample_access_histogram(&mut rng, 20_000);
        let total: u64 = counts.iter().sum();
        for c in (0..256).step_by(17) {
            let sampled = counts[c] as f64 / total as f64;
            let expected = wl.access_shares()[c];
            assert!(
                (sampled - expected).abs() < 0.002,
                "cluster {c}: sampled {sampled} vs expected {expected}"
            );
        }
    }

    #[test]
    fn mean_hit_rate_is_monotone_in_coverage() {
        let wl = ClusterWorkload::calibrate(512, 32, 0.8, 1);
        let mut prev = 0.0;
        for cov in [0.05, 0.1, 0.2, 0.4, 0.8, 1.0] {
            let eta = wl.mean_hit_rate(cov);
            assert!(eta >= prev, "hit rate must grow with coverage");
            prev = eta;
        }
        assert!((wl.mean_hit_rate(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_query_hit_rates_have_variance() {
        // The core empirical premise of §III-C: caching helps on average
        // but leaves a long tail of low-hit queries.
        let wl = ClusterWorkload::calibrate(1024, 64, 0.93, 2);
        let hot = wl.hot_set(0.2);
        let mask = wl.hot_mask(&hot);
        let mut rng = StdRng::seed_from_u64(11);
        let rates: Vec<f64> = (0..2000)
            .map(|_| ClusterWorkload::hit_rate(&wl.gen_probe_set(&mut rng), &mask))
            .collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rates.len() as f64;
        assert!(
            mean > 0.5,
            "ORCAS-like skew should yield high mean hit rate, got {mean}"
        );
        assert!(
            var > 0.01,
            "probe-set correlation must create variance, got {var}"
        );
    }

    #[test]
    fn fast_triangular_filter_matches_naive_convolution() {
        // Naive O(n·m) triangular convolution + inclusion-exclusion as the
        // reference for the O(n) double-box implementation.
        let p: Vec<f64> = {
            let raw: Vec<f64> = (0..37).map(|i| 1.0 / (i + 1) as f64).collect();
            let s: f64 = raw.iter().sum();
            raw.into_iter().map(|x| x / s).collect()
        };
        let m = 5usize;
        let n = p.len();
        let mut tri = vec![0.0f64; n];
        for (a, &pa) in p.iter().enumerate() {
            for d in 0..m as isize {
                let w = (m as isize - d) as f64;
                tri[(a + d as usize) % n] += pa * w;
                if d != 0 {
                    tri[(a + n - d as usize) % n] += pa * w;
                }
            }
        }
        let mut naive: Vec<f64> = tri
            .iter()
            .map(|&t| 1.0 - (1.0 - (t / m as f64).clamp(0.0, 1.0)).powi(4))
            .collect();
        let total: f64 = naive.iter().sum();
        for x in &mut naive {
            *x /= total;
        }
        let fast = expected_access(&p, m);
        for j in 0..n {
            assert!(
                (fast[j] - naive[j]).abs() < 1e-12,
                "mismatch at {j}: fast={} naive={}",
                fast[j],
                naive[j]
            );
        }
    }

    #[test]
    fn rotation_moves_the_hot_region() {
        let wl = ClusterWorkload::calibrate(512, 32, 0.85, 1);
        let shifted = wl.rotated(256);
        // Same total skew...
        assert!((wl.top_fraction_share(0.2) - shifted.top_fraction_share(0.2)).abs() < 1e-9);
        // ...but a mostly different hot set.
        let a = wl.hot_set(0.1);
        let b = shifted.hot_set(0.1);
        let overlap = a.iter().filter(|c| b.contains(c)).count();
        assert!(
            overlap < a.len() / 2,
            "hot sets overlap too much: {overlap}/{}",
            a.len()
        );
    }

    #[test]
    fn hot_set_sizes_match_coverage() {
        let wl = ClusterWorkload::new(1000, 10, 1.0, 0);
        assert_eq!(wl.hot_set(0.2).len(), 200);
        assert_eq!(wl.hot_set(0.0), Vec::<u32>::new());
        assert_eq!(wl.hot_set(1.0).len(), 1000);
    }

    #[test]
    #[should_panic(expected = "nprobe")]
    fn oversized_nprobe_rejected() {
        ClusterWorkload::new(10, 11, 1.0, 0);
    }
}
